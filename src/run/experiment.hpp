// Experiment execution layer: one simulation point as data.
//
// Every figure in the paper is a sweep — latency vs. node count, drop
// probability, NIC preset — and every sweep point is an independent
// simulation: build an Engine and a cluster, run warm-up + timed
// iterations, read the statistics. ExperimentSpec captures that point
// declaratively; run_experiment() executes it on a private Engine (no
// shared state, so points can run on any thread); RunResult carries the
// latency summary, protocol counters, and a determinism fingerprint that
// must be bit-identical across reruns and thread counts.
//
// Determinism contract: a RunResult is a pure function of its
// ExperimentSpec. All randomness (placement permutation, fault rules)
// derives from spec.seed; simulated time is integer picoseconds; the
// engine breaks ties by insertion order. fingerprint() digests the exact
// event counts and integer latency stats — two runs of the same spec, on
// any thread of any sweep, must produce equal fingerprints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.hpp"
#include "core/collectives.hpp"
#include "load/workload.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"

namespace qmb::run {

enum class Network { kMyrinetXP, kMyrinetL9, kQuadrics, kInfiniBand };

/// Barrier/collective implementation selector, across both networks.
/// nic/host exist everywhere; direct is the Myrinet prior-work NIC scheme;
/// gsync/hgsync are the Quadrics Elanlib tree and hardware barriers.
enum class Impl { kNic, kHost, kDirect, kGsync, kHgsync };

[[nodiscard]] std::string_view to_string(Network n);
[[nodiscard]] std::string_view to_string(Impl i);
[[nodiscard]] std::string_view to_string(coll::OpKind k);
[[nodiscard]] std::optional<Network> parse_network(std::string_view s);
[[nodiscard]] std::optional<Impl> parse_impl(std::string_view s);
[[nodiscard]] std::optional<coll::Algorithm> parse_algorithm(std::string_view s);
/// The short CLI spelling parse_algorithm accepts ("ds", "pe", "gb",
/// "tree", "trn", "fway", "ra").
[[nodiscard]] std::string_view algorithm_cli_name(coll::Algorithm a);
[[nodiscard]] std::optional<coll::OpKind> parse_op(std::string_view s);

struct ExperimentSpec {
  Network network = Network::kMyrinetXP;
  int nodes = 8;
  coll::OpKind op = coll::OpKind::kBarrier;
  Impl impl = Impl::kNic;
  coll::Algorithm algorithm = coll::Algorithm::kDissemination;
  /// Algorithm radix: the gather-broadcast tree degree and the f of f-way
  /// dissemination. 0 (the default) picks the algorithm's own default and
  /// is bit-identical to specs that predate this field.
  int radix = 0;
  /// Split-phase compute overlap in microseconds. Negative (the default)
  /// runs the blocking enter() loop, bit-identical to specs that predate
  /// this field. >= 0 switches the run to the GASNet-style split-phase
  /// loop with that much simulated computation between the two phases:
  /// notify/compute/wait for barriers, start/compute/wait for value
  /// collectives (bcast/allreduce/allgather/alltoall).
  double overlap_us = -1.0;
  int iters = 200;
  int warmup = 20;
  std::uint64_t seed = 1;
  bool random_placement = false;
  double drop_prob = 0.0;              // wire loss (loss-capable substrates only)
  myri::CollFeatures features{};       // NIC-collective ablation switches
  bool collect_trace = false;          // fills RunResult::trace_csv
  bool chrome_trace = false;           // fills RunResult::trace_json

  /// Fault plan installed into the fabric before the run (rule order is
  /// match order). Only legal on substrates whose capability flags report
  /// a loss-recovery path (like drop_prob); validate() enforces it.
  /// Deterministic: probabilistic rules carry their own seeds.
  std::vector<net::FaultSpec> faults;

  /// Max per-entry skew in microseconds: each rank's every (re-)entry is
  /// delayed by a uniform draw in [0, skew_max_us], from an RNG derived
  /// from `seed`. 0 = the historical tight re-entry loop (bit-identical to
  /// specs that predate this field).
  double skew_max_us = 0.0;

  /// Simulated-time watchdog for the whole run. A protocol bug that
  /// retransmits forever (or deadlocks) surfaces as a "did not complete"
  /// error at this horizon instead of spinning the engine; the fuzzer runs
  /// with a tight horizon so shrink iterations stay fast.
  std::int64_t horizon_ms = 120'000;

  /// Multi-tenant workload layer: when enabled (groups > 0) the run becomes
  /// `workload.groups` concurrent process groups issuing the workload's op
  /// mix from its arrival process, with optional background flood traffic,
  /// instead of one group of all nodes running `op`. `op`, `skew_max_us`,
  /// and `random_placement` are ignored in workload mode (the mix, arrival
  /// jitter, and membership policy replace them); `impl`, `algorithm`,
  /// faults, and drop_prob apply to every group. Disabled (the default) is
  /// bit-identical to specs that predate this field.
  load::WorkloadSpec workload;

  /// Worker threads for the conservative-PDES engine. 1 (the default) runs
  /// the classic sequential loop and is bit-identical to specs that predate
  /// this field. >1 shards the fabric into engine domains and advances them
  /// in lookahead-bounded windows — and because the domain cut and the
  /// window merge order depend only on the spec (never on thread count),
  /// every RunResult fingerprint is bit-identical at any engine_threads
  /// value. Runs that PDES cannot serve (workloads, faults, wire loss,
  /// entry skew, random placement, hardware-broadcast impls) silently run
  /// sequentially; only an *explicit* engine_domains on such a spec is a
  /// usage error.
  int engine_threads = 1;

  /// Target PDES domain count. 0 (default) = auto: a fixed target chosen
  /// by the runner when engine_threads > 1 (fixed so the cut — and thus the
  /// fingerprint-relevant window schedule — never depends on thread count).
  /// >1 forces a cut of roughly that many domains even at engine_threads=1
  /// (useful for testing the windowed path without parallelism).
  int engine_domains = 0;
};

/// Empty string when the spec is runnable; otherwise a usage error naming
/// the offending value *pair* (e.g. which impl is invalid for which
/// network), suitable for printing verbatim.
[[nodiscard]] std::string validate(const ExperimentSpec& spec);

/// The spec feature that blocks conservative PDES, or empty when the spec
/// is eligible. Ineligible specs with engine_threads > 1 silently run
/// sequentially (threads never change results); an explicit
/// engine_domains > 1 on one is a validate() usage error.
[[nodiscard]] std::string_view pdes_blocker(const ExperimentSpec& spec);

/// Resolved PDES domain target for a spec: <= 1 means run sequentially.
/// Substrate adapters pass this into their cluster constructors so the cut
/// happens at fabric construction. The auto target (engine_domains == 0,
/// engine_threads > 1) is a fixed constant — never derived from the thread
/// count, so the window schedule (and the fingerprint) cannot depend on it.
[[nodiscard]] int pdes_domain_target(const ExperimentSpec& spec);

struct RunResult {
  ExperimentSpec spec;
  std::string impl_name;  // the executor's self-reported name
  std::uint64_t iterations = 0;

  // Integer picoseconds — exact, so they participate in the fingerprint.
  std::int64_t mean_picos = 0;
  std::int64_t min_picos = 0;
  std::int64_t max_picos = 0;
  std::int64_t p99_picos = 0;

  std::uint64_t events_scheduled = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t nacks = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t hw_probes = 0;         // Quadrics hgsync only
  std::uint64_t hw_failed_probes = 0;  // Quadrics hgsync only
  /// Inbound CRC discards at the NICs (fault-injected corruption).
  std::uint64_t crc_dropped = 0;
  /// Value-collective results that differed from the exact expected value
  /// (run_experiment enters rank r with value r+1 and knows each op kind's
  /// right answer). Always 0 for barriers; any non-zero value is a protocol
  /// correctness bug, not noise. Not part of fingerprint() — the fuzzer's
  /// invariants consume it directly.
  std::uint64_t value_errors = 0;
  /// Per-rank operation completions observed / expected (nodes x total
  /// iterations). run_experiment throws when they diverge at the horizon,
  /// so results you can read always have them equal; the fields exist for
  /// reporting symmetry in repro artifacts.
  std::uint64_t ops_done = 0;
  std::uint64_t ops_expected = 0;
  /// Per-group tail-latency summaries (workload mode only; empty
  /// otherwise). The aggregate latency fields above then summarize
  /// arrival->completion samples across all groups, and the per-group p99,
  /// op count, and backlog peak join the fingerprint.
  std::vector<load::GroupStats> group_stats;
  /// Jain fairness index over per-group throughput (workload mode only).
  double fairness = 0.0;
  /// Background flood messages issued (workload mode only).
  std::uint64_t flood_sends = 0;
  std::string trace_csv;               // only when spec.collect_trace
  std::string trace_json;              // Chrome trace_event doc, spec.chrome_trace
  // Events lost to trace-ring wrap-around during a traced run; the exports
  // above are the tail of the timeline when this is non-zero. Host-side
  // observability only — never part of fingerprint().
  std::uint64_t trace_dropped = 0;

  /// Conservative-PDES shape of the run: the actual domain count (1 =
  /// sequential), the synchronization windows executed, and the events
  /// fired per domain (empty when sequential). Host-side observability —
  /// NOT part of fingerprint(): the same spec must fingerprint identically
  /// whether it ran sequentially or sharded, and events_fired (which *is*
  /// fingerprinted) already proves the work was identical.
  int pdes_domains = 1;
  std::uint64_t pdes_windows = 0;
  std::vector<std::uint64_t> pdes_domain_events;

  /// Generic snapshot of every metric the run registered (protocol
  /// counters, gauges, log2 histograms), aggregated across nodes in
  /// registration order. The named fields above are lookups into the same
  /// registry, kept for the fingerprint and existing consumers.
  std::vector<obs::MetricValue> metrics;

  /// Wall-clock duration of the whole run (warmup + timed iterations),
  /// measured on steady_clock around the engine loop. Host-side throughput
  /// observability only: noisy, machine-dependent, and deliberately NOT
  /// part of fingerprint() — two runs with equal fingerprints may differ
  /// arbitrarily here.
  double host_seconds = 0.0;

  /// Simulator throughput: events fired per host second (0 when the run
  /// was too fast for the clock to resolve).
  [[nodiscard]] double events_per_sec() const {
    return host_seconds > 0.0 ? static_cast<double>(events_fired) / host_seconds : 0.0;
  }

  [[nodiscard]] double mean_us() const { return static_cast<double>(mean_picos) * 1e-6; }
  [[nodiscard]] double min_us() const { return static_cast<double>(min_picos) * 1e-6; }
  [[nodiscard]] double max_us() const { return static_cast<double>(max_picos) * 1e-6; }
  [[nodiscard]] double p99_us() const { return static_cast<double>(p99_picos) * 1e-6; }

  /// Digest of everything that must be bit-identical across reruns of the
  /// same spec: event counts, wire counters, and the integer latency stats.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Runs one experiment on a private Engine. Thread-safe with respect to
/// other concurrent runs (the simulation shares no mutable state). Throws
/// std::invalid_argument with validate()'s message on a bad spec.
[[nodiscard]] RunResult run_experiment(const ExperimentSpec& spec);

/// Deterministic per-point seed stream: splitmix64 over the base seed, so a
/// sweep's points get decorrelated yet reproducible seeds regardless of the
/// order (or thread) they execute on.
[[nodiscard]] std::uint64_t seed_for(std::uint64_t base_seed, std::size_t index);

/// Single-line JSON object for one (spec, result) pair.
[[nodiscard]] std::string to_json(const RunResult& r);

/// Compact JSON object for a metric snapshot: counters/gauges as numbers,
/// histograms as {count, sum, buckets}. Used inside to_json and by
/// qmbsim --metrics-json.
[[nodiscard]] std::string metrics_to_json(const std::vector<obs::MetricValue>& metrics);

}  // namespace qmb::run
