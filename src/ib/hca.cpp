#include "ib/hca.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/coll_tag.hpp"

namespace qmb::ib {

// Every request body must ride inline in the packet payload — the fabric
// packet path is allocation-free and retransmission records clone bodies.
static_assert(sizeof(IbWrite) <= net::PacketPayload::kInlineCapacity);
static_assert(sizeof(IbAck) <= net::PacketPayload::kInlineCapacity);

namespace {

/// CAS swap operands ride packed in (tag, src_rank), which atomics do not
/// otherwise use — the body stays small enough to stay inline.
std::int64_t unpack_swap(const IbWrite& w) {
  return static_cast<std::int64_t>((static_cast<std::uint64_t>(w.tag) << 32) |
                                   static_cast<std::uint64_t>(w.src_rank));
}

void pack_swap(IbWrite& w, std::int64_t swap) {
  const auto u = static_cast<std::uint64_t>(swap);
  w.tag = static_cast<std::uint32_t>(u >> 32);
  w.src_rank = static_cast<std::uint32_t>(u & 0xFFFFFFFFULL);
}

}  // namespace

Hca::Hca(sim::Engine& engine, net::Fabric& fabric, const IbConfig& config,
         int node_index, sim::Tracer* tracer, bool skip_retransmit)
    : engine_(&engine),
      fabric_(&fabric),
      config_(&config),
      node_(node_index),
      tracer_(tracer),
      unit_(engine),
      skip_retransmit_(skip_retransmit) {
  if (tracer_) trace_comp_ = tracer_->intern("ib");
  auto& reg = engine_->metrics();
  stats_.writes_posted = reg.counter("ib.writes_posted", node_);
  stats_.acks_sent = reg.counter("ib.acks_sent", node_);
  stats_.naks_sent = reg.counter("ib.naks_sent", node_);
  stats_.retransmissions = reg.counter("ib.retransmissions", node_);
  stats_.rto_fires = reg.counter("ib.rto_fires", node_);
  stats_.duplicates_dropped = reg.counter("ib.duplicates_dropped", node_);
  stats_.ops_completed = reg.counter("ib.ops_completed", node_);
  stats_.early_buffered = reg.counter("ib.early_buffered", node_);
  stats_.atomics_executed = reg.counter("ib.atomics_executed", node_);
  stats_.crc_dropped = reg.counter("nic.crc_dropped", node_);
  addr_ = fabric_->attach([this](net::Packet&& p) {
    if (p.corrupted) {  // ICRC check: discard before the transport sees it
      ++stats_.crc_dropped;
      trace("crc_drop", p.src.value(), 0, static_cast<std::int64_t>(p.id));
      return;
    }
    on_packet(std::move(p));
  });
}

void Hca::trace(std::string_view event, std::int64_t a, std::int64_t b,
                std::int64_t flow) {
  if (tracer_ && tracer_->enabled()) {
    tracer_->record(engine_->now(), trace_comp_, tracer_->intern(event), node_, a, b,
                    flow);
  }
}

// --- RC transport ---

void Hca::post_write(int dst_node, IbWrite body, std::uint32_t payload_bytes) {
  const std::uint32_t wire = config_->header_bytes + payload_bytes;
  unit_.exec(config_->qp_process, [this, dst_node, body, wire]() mutable {
    SendQp& q = send_qps_[dst_node];
    IbWrite stamped = body;
    stamped.psn = q.next_psn++;
    q.unacked.push_back({stamped, wire});
    ++stats_.writes_posted;
    const std::uint64_t flow = fabric_->send(
        net::Packet(addr_, net::NicAddr(dst_node), wire, stamped));
    trace("rdma_write", dst_node, stamped.psn, static_cast<std::int64_t>(flow));
    if (stamped.op == IbWrite::Op::kWriteImm &&
        stamped.imm_class == IbWrite::ImmClass::kGroup) {
      // Collective trigger record, mirroring the Myrinet engine's
      // "coll_send": the b operand carries the BarrierTag-encoded
      // group/seq/edge tag so trace_report can attribute rounds and
      // groups in multi-tenant runs.
      trace("coll_send", dst_node,
            core::BarrierTag::encode(stamped.group, stamped.seq, stamped.tag),
            static_cast<std::int64_t>(flow));
    }
    if (!q.timer_armed) arm_rto(dst_node);
  });
}

void Hca::on_packet(net::Packet&& p) {
  const int src = p.src.value();
  if (const auto* a = net::body_as<IbAck>(p)) {
    const IbAck ack = *a;
    unit_.exec(config_->ack_process, [this, src, ack] { handle_ack(src, ack); });
    return;
  }
  if (const auto* w = net::body_as<IbWrite>(p)) {
    const IbWrite body = *w;
    const std::uint64_t flow = p.id;
    unit_.exec(config_->rx_process, [this, src, body, flow] {
      trace("rx", src, body.psn, static_cast<std::int64_t>(flow));
      accept_request(src, body);
    });
    return;
  }
  throw std::logic_error("unhandled packet body type at IB HCA");
}

void Hca::accept_request(int src_node, const IbWrite& w) {
  RecvQp& q = recv_qps_[src_node];
  if (w.psn == q.expected_psn) {
    ++q.expected_psn;
    q.nak_outstanding = false;
    send_ack(src_node, q.expected_psn, /*nak=*/false);
    deliver_request(src_node, w);
    return;
  }
  if (w.psn > q.expected_psn) {
    // Sequence gap: an earlier request was lost (or is straggling). RC
    // discards out-of-order arrivals and asks the sender to go back.
    trace("psn_gap", src_node, w.psn);
    if (!q.nak_outstanding) {
      q.nak_outstanding = true;  // one NAK per gap until progress resumes
      send_ack(src_node, q.expected_psn, /*nak=*/true);
    }
    return;
  }
  // Duplicate of an already-accepted request (retransmission overlap or an
  // injected duplicate): drop it but re-ACK, or a sender whose ACK was
  // lost retransmits forever.
  ++stats_.duplicates_dropped;
  send_ack(src_node, q.expected_psn, /*nak=*/false);
}

void Hca::deliver_request(int src_node, const IbWrite& w) {
  switch (w.op) {
    case IbWrite::Op::kWriteImm:
      if (w.imm_class == IbWrite::ImmClass::kGroup) {
        handle_group_event(w);
      } else {
        // The immediate data CQEs into host memory; the host layer adds
        // its own poll cost on top.
        unit_.exec(config_->cq_dma, [this, w] {
          if (host_msg_handler_) host_msg_handler_(w);
        });
      }
      return;
    case IbWrite::Op::kCompSwap:
    case IbWrite::Op::kFetchAdd: {
      const IbWrite body = w;
      unit_.exec(config_->atomic_exec, [this, src_node, body] {
        std::int64_t& word = atomic_words_[body.group];
        const std::int64_t old = word;
        if (body.op == IbWrite::Op::kCompSwap) {
          if (word == body.value) word = unpack_swap(body);
        } else {
          word += body.value;
        }
        ++stats_.atomics_executed;
        trace("atomic_exec", src_node, body.group);
        IbWrite resp;
        resp.op = IbWrite::Op::kAtomicResp;
        resp.seq = body.seq;  // requester's completion token
        resp.value = old;
        post_write(src_node, resp, 8);
      });
      return;
    }
    case IbWrite::Op::kAtomicResp:
      unit_.exec(config_->cq_dma, [this, w] {
        auto it = pending_atomics_.find(w.seq);
        if (it == pending_atomics_.end()) return;
        AtomicDone done = std::move(it->second);
        pending_atomics_.erase(it);
        if (done) done(w.value);
      });
      return;
  }
  throw std::logic_error("unhandled IB request opcode");
}

void Hca::send_ack(int dst_node, std::uint32_t psn, bool nak) {
  unit_.exec(config_->ack_process, [this, dst_node, psn, nak] {
    if (nak) {
      ++stats_.naks_sent;
    } else {
      ++stats_.acks_sent;
    }
    IbAck a;
    a.psn = psn;
    a.nak = nak;
    const std::uint64_t flow = fabric_->send(
        net::Packet(addr_, net::NicAddr(dst_node), config_->ack_bytes, a));
    trace(nak ? "nak" : "ack", dst_node, psn, static_cast<std::int64_t>(flow));
  });
}

void Hca::handle_ack(int peer, const IbAck& a) {
  SendQp& q = send_qps_[peer];
  while (!q.unacked.empty() && q.unacked.front().body.psn < a.psn) {
    q.unacked.pop_front();
  }
  if (a.nak) {
    trace("nak_rx", peer, a.psn);
    if (skip_retransmit_) return;  // planted bug: recovery disabled
    retransmit_window(peer);
    return;
  }
  if (q.unacked.empty()) {
    if (q.timer_armed) {
      engine_->cancel(q.rto_timer);
      q.timer_armed = false;
    }
  } else if (!skip_retransmit_) {
    // Progress: restart the timer for the new oldest unacked request.
    if (q.timer_armed) engine_->cancel(q.rto_timer);
    q.timer_armed = false;
    arm_rto(peer);
  }
}

void Hca::arm_rto(int peer) {
  if (skip_retransmit_) return;
  SendQp& q = send_qps_[peer];
  assert(!q.timer_armed);
  q.timer_armed = true;
  q.rto_timer = engine_->schedule(config_->rto, [this, peer] {
    SendQp& sq = send_qps_[peer];
    sq.timer_armed = false;
    if (sq.unacked.empty()) return;
    ++stats_.rto_fires;
    trace("rto_fire", peer, sq.unacked.front().body.psn);
    retransmit_window(peer);
  });
}

void Hca::retransmit_window(int peer) {
  SendQp& q = send_qps_[peer];
  if (q.unacked.empty()) return;
  if (q.timer_armed) {
    engine_->cancel(q.rto_timer);
    q.timer_armed = false;
  }
  // Go-back-N: replay the whole unacked window in PSN order under one WQE
  // re-fetch charge; the receiver's PSN check discards any overlap.
  unit_.exec(config_->qp_process, [this, peer] {
    SendQp& sq = send_qps_[peer];
    for (const PendingWrite& pw : sq.unacked) {
      ++stats_.retransmissions;
      const std::uint64_t flow = fabric_->send(
          net::Packet(addr_, net::NicAddr(peer), pw.wire_bytes, pw.body));
      trace("retransmit", peer, pw.body.psn, static_cast<std::int64_t>(flow));
    }
    if (!sq.unacked.empty() && !sq.timer_armed) arm_rto(peer);
  });
}

// --- remote atomics ---

void Hca::post_atomic(int dst_node, IbWrite::Op op, std::uint32_t slot,
                      std::int64_t compare, std::int64_t swap_or_add, AtomicDone done) {
  const std::uint32_t token = next_atomic_token_++;
  pending_atomics_.emplace(token, std::move(done));
  IbWrite w;
  w.op = op;
  w.group = slot;
  w.seq = token;
  if (op == IbWrite::Op::kCompSwap) {
    w.value = compare;
    pack_swap(w, swap_or_add);
  } else {
    w.value = swap_or_add;
  }
  post_write(dst_node, w, 8);
}

void Hca::fetch_add(int dst_node, std::uint32_t slot, std::int64_t addend,
                    AtomicDone done) {
  post_atomic(dst_node, IbWrite::Op::kFetchAdd, slot, 0, addend, std::move(done));
}

void Hca::compare_swap(int dst_node, std::uint32_t slot, std::int64_t compare,
                       std::int64_t swap, AtomicDone done) {
  post_atomic(dst_node, IbWrite::Op::kCompSwap, slot, compare, swap, std::move(done));
}

std::int64_t Hca::atomic_word(std::uint32_t slot) const {
  const auto it = atomic_words_.find(slot);
  return it == atomic_words_.end() ? 0 : it->second;
}

// --- collective group engine (the paper's protocol on verbs) ---

void Hca::create_group(IbGroupDesc desc) {
  if (groups_.contains(desc.group_id)) {
    throw std::invalid_argument("ib collective group id already registered");
  }
  Group g;
  g.desc = std::move(desc);
  groups_.emplace(g.desc.group_id, std::move(g));
}

Hca::Op& Hca::touch_slot(Group& g, std::uint32_t seq) {
  Op& op = g.slots[seq & 1];
  if (op.in_use && op.seq == seq) return op;
  if (op.in_use && !op.complete) {
    throw std::logic_error("ib collective window violated: operation overtaken by seq+2");
  }
  if (op.exec) op.exec->reset();
  op.early.clear();
  op.wait_values.clear();
  op.seq = seq;
  op.in_use = true;
  op.active = false;
  op.complete = false;
  op.acc = 0;
  op.done = nullptr;
  return op;
}

void Hca::barrier_enter(std::uint32_t group, sim::EventCallback done) {
  // done is move-only; shared_ptr bridges it into the copyable DoneFn.
  collective_enter(group, 0,
                   [done = std::make_shared<sim::EventCallback>(std::move(done))](
                       std::int64_t) {
                     if (*done) (*done)();
                   });
}

void Hca::collective_enter(std::uint32_t group, std::int64_t value,
                           std::function<void(std::int64_t)> done) {
  // The doorbell dispatch shares the WQE-processing unit charge.
  unit_.exec(config_->qp_process, [this, group, value, done = std::move(done)]() mutable {
    auto it = groups_.find(group);
    assert(it != groups_.end() && "collective_enter on unknown group");
    Group& g = it->second;
    const std::uint32_t seq = g.next_host_seq++;
    Op& op = touch_slot(g, seq);
    op.done = std::move(done);
    op.acc = value;
    activate(g, op);
  });
}

void Hca::activate(Group& g, Op& op) {
  op.active = true;
  if (!op.exec) {
    Group* gp = &g;
    Op* opp = &op;
    op.exec = std::make_unique<coll::ScheduleExecutor>(
        g.desc.schedule,
        [this, gp, opp](const coll::Edge& e) { group_send(*gp, opp->seq, e, opp->acc); },
        [this, gp, opp] { finish_op(*gp, *opp); });
    // Payloads fold into the accumulator as their step is consumed (never
    // at arrival time), matching the Myrinet and Elan engines' semantics.
    op.exec->set_step_consumer([gp, opp](const coll::Step& st) {
      for (const coll::Edge& w : st.waits) {
        const auto it = opp->wait_values.find(edge_key(w.peer, w.tag));
        if (it != opp->wait_values.end()) {
          opp->acc = coll::combine_value(gp->desc.op_kind, gp->desc.reduce_op, w.tag,
                                         opp->acc, it->second);
        }
      }
    });
  }
  trace("op_enter", g.desc.group_id, op.seq);
  for (const EarlyArrival& ea : op.early) {
    op.wait_values.emplace(edge_key(ea.peer_rank, ea.tag), ea.value);
  }
  op.exec->start();
  if (!op.complete) {
    for (const EarlyArrival& ea : op.early) {
      op.exec->on_arrival(ea.peer_rank, ea.tag);
      if (op.complete) break;
    }
  }
  op.early.clear();
}

void Hca::group_send(Group& g, std::uint32_t seq, const coll::Edge& e,
                     std::int64_t value) {
  // A barrier edge is a zero-byte RDMA write whose immediate data is the
  // whole protocol header — the verbs rendition of the paper's "RDMA
  // operations with no data transfer can fire a remote event". Value
  // collectives put their payload words through the same write.
  IbWrite body;
  body.op = IbWrite::Op::kWriteImm;
  body.imm_class = IbWrite::ImmClass::kGroup;
  body.group = g.desc.group_id;
  body.seq = seq;
  body.tag = e.tag;
  body.src_rank = static_cast<std::uint32_t>(g.desc.my_rank);
  body.value = value;
  const std::uint32_t payload =
      g.desc.op_kind == coll::OpKind::kBarrier
          ? 0u
          : g.desc.payload_bytes * static_cast<std::uint32_t>(coll::edge_payload_words(
                                       g.desc.op_kind, e.tag, value));
  body.payload_bytes = payload;
  const int dst_node = g.desc.rank_to_node->at(static_cast<std::size_t>(e.peer));
  post_write(dst_node, body, payload);
}

void Hca::handle_group_event(const IbWrite& w) {
  auto it = groups_.find(w.group);
  if (it == groups_.end()) return;
  Group& g = it->second;
  Op& slot = g.slots[w.seq & 1];
  if (slot.in_use && slot.seq == w.seq) {
    if (slot.complete) return;  // transport delivers exactly-once: cannot happen
    if (slot.active) {
      slot.wait_values.emplace(edge_key(static_cast<int>(w.src_rank), w.tag), w.value);
      slot.exec->on_arrival(static_cast<int>(w.src_rank), w.tag);
    } else {
      ++stats_.early_buffered;
      slot.early.push_back({static_cast<int>(w.src_rank), w.tag, w.value});
    }
    return;
  }
  if (slot.in_use && w.seq < slot.seq) return;  // stale
  Op& op = touch_slot(g, w.seq);
  ++stats_.early_buffered;
  op.early.push_back({static_cast<int>(w.src_rank), w.tag, w.value});
}

void Hca::finish_op(Group& g, Op& op) {
  assert(!op.complete);
  op.complete = true;
  ++stats_.ops_completed;
  trace("op_complete", g.desc.group_id, op.seq);
  auto done = std::move(op.done);
  op.done = nullptr;
  const std::int64_t result = op.acc;
  // The completion CQE (immediate data + result) DMAs to host memory.
  unit_.exec(config_->cq_dma, [done = std::move(done), result]() mutable {
    if (done) done(result);
  });
}

}  // namespace qmb::ib
