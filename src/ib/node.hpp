// Verbs-consumer host API: tagged sends over RDMA write-with-immediate,
// the NIC collective doorbell, and remote atomics, with host costs (WQE
// build, doorbell MMIO, CQ polling) on the node's host CPU resource — the
// IB twin of elan::ElanNode.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "ib/hca.hpp"
#include "sim/resource.hpp"

namespace qmb::ib {

/// One simulated IB node: host CPU + HCA with RC queue pairs to its peers.
class IbNode {
 public:
  IbNode(sim::Engine& engine, net::Fabric& fabric, const IbConfig& config, int index,
         sim::Tracer* tracer, bool skip_retransmit = false);
  IbNode(const IbNode&) = delete;
  IbNode& operator=(const IbNode&) = delete;

  /// Tagged host-level message: an RDMA write-with-immediate whose CQE the
  /// remote host consumes from its completion queue. `value` models the
  /// first payload word.
  void post(int dst_node, std::uint32_t bytes, std::uint32_t tag, std::int64_t value = 0);

  using ReceiveHandler =
      std::function<void(int src_node, std::uint32_t tag, std::int64_t value)>;

  /// Installs (or replaces) the application's receive handler. Every
  /// consumed CQE pays one host_cq_poll, then runs the added handlers
  /// followed by this one.
  void set_receive_handler(ReceiveHandler fn);

  /// Adds a handler that sees every host message alongside the app handler
  /// (host collectives over overlapping groups each add one and filter by
  /// tag). Returns an id for remove_receive_handler. The per-message host
  /// cost is paid once per node, not per handler.
  int add_receive_handler(ReceiveHandler fn);
  void remove_receive_handler(int id);

  /// Arms a collective group on this node's HCA (setup time, off the
  /// measured path — groups are created once before the run).
  void create_group(IbGroupDesc desc) { hca_.create_group(std::move(desc)); }

  /// NIC-resident barrier: doorbell in, completion CQE out. `done` runs on
  /// the host after it polls the completion.
  void barrier_enter(std::uint32_t group, sim::EventCallback done);

  /// Value-carrying NIC collective: operand in with the doorbell, result
  /// out with the CQE.
  void collective_enter(std::uint32_t group, std::int64_t value,
                        std::function<void(std::int64_t)> done);

  /// Remote fetch-and-add / compare-and-swap issued from the host; the
  /// completion (old value) is polled off the CQ like any other work
  /// request.
  void remote_fetch_add(int dst_node, std::uint32_t slot, std::int64_t addend,
                        std::function<void(std::int64_t)> done);
  void remote_compare_swap(int dst_node, std::uint32_t slot, std::int64_t compare,
                           std::int64_t swap, std::function<void(std::int64_t)> done);

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] sim::Resource& host_cpu() { return host_cpu_; }
  [[nodiscard]] Hca& hca() { return hca_; }
  [[nodiscard]] const IbConfig& config() const { return cfg_; }

 private:
  void install_dispatcher();

  int index_;
  const IbConfig& cfg_;
  sim::Resource host_cpu_;
  Hca hca_;
  ReceiveHandler app_handler_;
  std::vector<std::pair<int, ReceiveHandler>> extra_handlers_;
  int next_handler_id_ = 0;
  bool dispatcher_installed_ = false;
};

}  // namespace qmb::ib
