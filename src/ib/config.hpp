// Cost-model preset for an InfiniBand-style RDMA verbs fabric: ConnectX-era
// HCAs with reliable-connection (RC) queue pairs on a fat tree of IB
// switches — the generalization target of the paper's NIC-based collective
// protocol ("Design and Implementation of MPICH2 over InfiniBand with RDMA
// Support", same lineage; see PAPERS.md).
//
// Unlike QsNet, the IB wire is NOT assumed reliable end-to-end at the layer
// we model: the RC transport recovers losses itself with per-QP packet
// sequence numbers, cumulative ACKs, NAK-on-gap, and a go-back-N
// retransmission timer. That machinery is what lets the fault injector's
// drop/corrupt/duplicate/reorder rules run against this substrate, which
// neither Quadrics model supports.
#pragma once

#include "net/link.hpp"
#include "net/switch_node.hpp"
#include "sim/time.hpp"

namespace qmb::ib {

struct IbConfig {
  // --- host side (verbs consumer) ---
  sim::SimDuration host_setup = sim::nanoseconds(300);      // per-op bookkeeping before the first WQE
  sim::SimDuration host_wqe_build = sim::nanoseconds(350);  // build a WQE in the send queue
  sim::SimDuration host_doorbell = sim::nanoseconds(250);   // MMIO ring of the QP doorbell
  sim::SimDuration host_cq_poll = sim::nanoseconds(400);    // poll + consume one CQE

  // --- HCA units ---
  sim::SimDuration qp_process = sim::nanoseconds(300);   // WQE fetch, packet build, PSN stamp
  sim::SimDuration rx_process = sim::nanoseconds(250);   // inbound PSN check + RDMA write placement
  sim::SimDuration cq_dma = sim::nanoseconds(300);       // CQE (immediate data) DMA to host memory
  sim::SimDuration atomic_exec = sim::nanoseconds(200);  // responder-side CAS / fetch-add
  sim::SimDuration ack_process = sim::nanoseconds(100);  // ACK/NAK generation or retirement

  // --- RC reliability ---
  /// Go-back-N retransmission timeout. Far above the unloaded RTT so a
  /// timer fire means real loss, not congestion; NAK-on-gap recovers the
  /// common case much sooner.
  sim::SimDuration rto = sim::microseconds(50);

  // --- fabric ---
  std::size_t radix = 16;  // switch port count (crossbar below, fat tree above)
  net::LinkParams link{sim::nanoseconds(120), 1.0e9};  // 4X SDR-ish: ~1 GB/s data rate
  net::SwitchParams sw{sim::nanoseconds(110)};

  std::uint32_t header_bytes = 30;  // LRH + BTH + RETH
  std::uint32_t ack_bytes = 30;     // LRH + BTH + AETH
};

/// The default simulated IB cluster.
[[nodiscard]] inline IbConfig ib_cluster() { return IbConfig{}; }

}  // namespace qmb::ib
