// IB wire transactions. Plain structs carried inline in net::PacketPayload
// (tag dispatch, no vtables), mirroring the Elan and Myrinet packet
// headers one layer up.
//
// Everything rides the RC transport: each (src, dst) direction is one
// queue pair with its own packet sequence number stream. Requests (RDMA
// writes and atomics) are PSN-stamped and retransmitted on NAK or timeout;
// ACK/NAK packets are unsequenced, like real AETH frames — a lost ACK is
// recovered by the sender's timer, never acknowledged itself.
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace qmb::ib {

/// One RC request packet. An RDMA write-with-immediate whose immediate
/// data carries the collective protocol header is the building block of
/// the NIC-based barrier on this substrate (the verbs equivalent of the
/// paper's zero-byte event-firing put); CAS and fetch-add requests share
/// the sequenced channel, with the atomic response travelling back as its
/// own sequenced packet on the reverse-direction QP.
struct IbWrite {
  enum class Op : std::uint8_t {
    kWriteImm,    // RDMA write with immediate data
    kCompSwap,    // remote compare-and-swap
    kFetchAdd,    // remote fetch-and-add
    kAtomicResp,  // original value returned to the requester
  };
  /// What the immediate data means to the receiving HCA's consumer.
  enum class ImmClass : std::uint8_t {
    kGroup,    // collective-group engine event
    kHostMsg,  // host-level tagged message (CQE to the host)
  };

  // Atomics reuse the collective fields the sequenced channel already
  // carries (the body must stay within the inline payload capacity):
  // `group` is the responder's atomic slot, `seq` the requester's
  // completion token, `value` the CAS compare operand or fetch-add addend,
  // and the CAS swap operand rides packed into (tag, src_rank).
  Op op = Op::kWriteImm;
  ImmClass imm_class = ImmClass::kHostMsg;
  std::uint32_t psn = 0;       // sequence number on the (src, dst) QP
  std::uint32_t group = 0;     // collective group id / atomic slot
  std::uint32_t seq = 0;       // op sequence in the group / atomic token
  std::uint32_t tag = 0;       // schedule-edge tag / host message tag
  std::uint32_t src_rank = 0;  // sender's rank (kGroup) or node (kHostMsg)
  std::uint32_t payload_bytes = 0;
  std::int64_t value = 0;      // payload word / atomic operand or old value
};

/// Cumulative acknowledgement: every request with psn < `psn` has been
/// accepted. `nak` reports a sequence gap and asks the sender to go back
/// and retransmit from `psn`.
struct IbAck {
  std::uint32_t psn = 0;
  bool nak = false;
};

}  // namespace qmb::ib
