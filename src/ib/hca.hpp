// IB HCA model: RC queue pairs, a completion path, remote atomics, and the
// NIC-resident collective group engine, all sharing the card's processing
// unit (one serialized Resource) — the verbs twin of the Elan3 NIC in
// src/quadrics/nic.hpp.
//
// The transport is the part neither existing substrate has: one RC queue
// pair per (src, dst) direction with packet sequence numbers, cumulative
// ACKs, NAK-on-gap, and go-back-N retransmission on a timer. The paper's
// four protocol simplifications (dedicated per-group queue, static
// buffering, bounded retransmission state, NIC-resident progress) are
// exercised here on a fabric where loss, duplication and reordering are
// all recoverable — the generalization claim of Sec. 9.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/schedule.hpp"
#include "ib/config.hpp"
#include "ib/verbs.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/resource.hpp"
#include "sim/trace.hpp"

namespace qmb::ib {

struct IbGroupDesc {
  std::uint32_t group_id = 0;
  int my_rank = -1;
  coll::Placement rank_to_node;  // shared across the group's HCAs
  coll::RankSchedule schedule;
  coll::OpKind op_kind = coll::OpKind::kBarrier;
  coll::ReduceOp reduce_op = coll::ReduceOp::kSum;
  std::uint32_t payload_bytes = 8;  // bytes per contribution word
};

/// Handles into the engine's MetricRegistry, registered per HCA under
/// "ib.*" names; RunResult folds ib.naks_sent / ib.retransmissions into
/// the legacy nacks / retransmissions fingerprint counters and the fuzzer
/// checks ib.ops_completed algebra.
struct HcaStats {
  obs::Counter writes_posted;
  obs::Counter acks_sent;
  obs::Counter naks_sent;
  obs::Counter retransmissions;
  obs::Counter rto_fires;
  obs::Counter duplicates_dropped;
  obs::Counter ops_completed;
  obs::Counter early_buffered;
  obs::Counter atomics_executed;
  obs::Counter crc_dropped;  // inbound CRC discards (fault-injected corruption)
};

class Hca {
 public:
  /// `skip_retransmit` disables NAK handling and the RTO timer — the
  /// planted-bug hook (spec.features.debug_skip_retransmit) the fuzzer
  /// uses to prove its invariants can catch a broken recovery path.
  Hca(sim::Engine& engine, net::Fabric& fabric, const IbConfig& config, int node_index,
      sim::Tracer* tracer, bool skip_retransmit = false);

  // --- RC transport verbs ---

  /// Posts one RC request towards `dst_node` (called at HCA time,
  /// post-doorbell): stamps the QP's next PSN, records the packet for
  /// go-back-N, injects it, and arms the retransmission timer.
  void post_write(int dst_node, IbWrite body, std::uint32_t payload_bytes);

  /// Handler for write-with-immediate requests whose immediate data is a
  /// host-level message; runs at HCA time after the CQE DMA (host poll
  /// cost is the caller's).
  using HostMsgHandler = std::function<void(const IbWrite&)>;
  void set_host_msg_handler(HostMsgHandler h) { host_msg_handler_ = std::move(h); }

  // --- remote atomics ---

  using AtomicDone = std::function<void(std::int64_t old_value)>;
  /// Remote fetch-and-add on `slot` of `dst_node`'s atomic region; `done`
  /// runs at HCA time with the pre-add value when the response retires.
  void fetch_add(int dst_node, std::uint32_t slot, std::int64_t addend, AtomicDone done);
  /// Remote compare-and-swap; `done` receives the pre-swap value (the swap
  /// happened iff it equals `compare`).
  void compare_swap(int dst_node, std::uint32_t slot, std::int64_t compare,
                    std::int64_t swap, AtomicDone done);
  /// This HCA's atomic region (responder side), for tests and seeding.
  [[nodiscard]] std::int64_t atomic_word(std::uint32_t slot) const;
  void set_atomic_word(std::uint32_t slot, std::int64_t value) {
    atomic_words_[slot] = value;
  }

  // --- NIC-resident collective group engine (paper Secs. 5-7 on verbs) ---

  /// Arms a collective group: this rank's schedule walks entirely on the
  /// HCA, advanced by arriving write-with-immediate events.
  void create_group(IbGroupDesc desc);

  /// Host rang the doorbell for one barrier operation (at HCA time).
  /// `done` runs at HCA time when the completion CQE lands in host memory.
  void barrier_enter(std::uint32_t group, sim::EventCallback done);

  /// Value-carrying entry for bcast/allreduce/allgather/alltoall groups:
  /// the operand rides the immediate data of the same RDMA writes.
  void collective_enter(std::uint32_t group, std::int64_t value,
                        std::function<void(std::int64_t)> done);

  [[nodiscard]] net::NicAddr addr() const { return addr_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] const IbConfig& config() const { return *config_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] sim::Resource& unit() { return unit_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const HcaStats& stats() const { return stats_; }

  void trace(std::string_view event, std::int64_t a = 0, std::int64_t b = 0,
             std::int64_t flow = 0);

 private:
  // --- transport state ---
  struct PendingWrite {
    IbWrite body;
    std::uint32_t wire_bytes = 0;
  };
  struct SendQp {
    std::uint32_t next_psn = 0;
    std::deque<PendingWrite> unacked;  // PSN order; front is the oldest
    sim::EventId rto_timer;
    bool timer_armed = false;
  };
  struct RecvQp {
    std::uint32_t expected_psn = 0;
    bool nak_outstanding = false;  // one NAK per gap until progress resumes
  };

  // --- collective engine state (mirrors elan::Nic's two-deep window) ---
  struct EarlyArrival {
    int peer_rank;
    std::uint32_t tag;
    std::int64_t value;
  };
  struct Op {
    std::uint32_t seq = 0;
    bool in_use = false;
    bool active = false;
    bool complete = false;
    std::int64_t acc = 0;
    std::unique_ptr<coll::ScheduleExecutor> exec;
    std::vector<EarlyArrival> early;
    std::unordered_map<std::uint64_t, std::int64_t> wait_values;
    std::function<void(std::int64_t)> done;
  };
  struct Group {
    IbGroupDesc desc;
    std::uint32_t next_host_seq = 0;
    Op slots[2];
  };

  [[nodiscard]] static std::uint64_t edge_key(int peer, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) | tag;
  }

  void on_packet(net::Packet&& p);
  void accept_request(int src_node, const IbWrite& w);
  void deliver_request(int src_node, const IbWrite& w);
  void send_ack(int dst_node, std::uint32_t psn, bool nak);
  void handle_ack(int peer, const IbAck& a);
  void arm_rto(int peer);
  void retransmit_window(int peer);
  void post_atomic(int dst_node, IbWrite::Op op, std::uint32_t slot, std::int64_t compare,
                   std::int64_t swap_or_add, AtomicDone done);

  void handle_group_event(const IbWrite& w);
  Op& touch_slot(Group& g, std::uint32_t seq);
  void activate(Group& g, Op& op);
  void group_send(Group& g, std::uint32_t seq, const coll::Edge& e, std::int64_t value);
  void finish_op(Group& g, Op& op);

  sim::Engine* engine_;
  net::Fabric* fabric_;
  const IbConfig* config_;
  int node_;
  sim::Tracer* tracer_;
  std::uint16_t trace_comp_ = 0;  // interned "ib"
  sim::Resource unit_;
  net::NicAddr addr_;
  HcaStats stats_;
  bool skip_retransmit_ = false;
  HostMsgHandler host_msg_handler_;

  std::unordered_map<int, SendQp> send_qps_;
  std::unordered_map<int, RecvQp> recv_qps_;
  std::unordered_map<std::uint32_t, std::int64_t> atomic_words_;
  std::unordered_map<std::uint32_t, AtomicDone> pending_atomics_;
  std::uint32_t next_atomic_token_ = 1;
  std::unordered_map<std::uint32_t, Group> groups_;
};

}  // namespace qmb::ib
