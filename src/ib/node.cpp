#include "ib/node.hpp"

#include <utility>

namespace qmb::ib {

IbNode::IbNode(sim::Engine& engine, net::Fabric& fabric, const IbConfig& config,
               int index, sim::Tracer* tracer, bool skip_retransmit)
    : index_(index),
      cfg_(config),
      host_cpu_(engine),
      hca_(engine, fabric, config, index, tracer, skip_retransmit) {}

void IbNode::post(int dst_node, std::uint32_t bytes, std::uint32_t tag,
                  std::int64_t value) {
  host_cpu_.exec(cfg_.host_wqe_build + cfg_.host_doorbell,
                 [this, dst_node, bytes, tag, value] {
    IbWrite body;
    body.op = IbWrite::Op::kWriteImm;
    body.imm_class = IbWrite::ImmClass::kHostMsg;
    body.tag = tag;
    body.src_rank = static_cast<std::uint32_t>(index_);
    body.payload_bytes = bytes;
    body.value = value;
    hca_.trace("ib_post", dst_node, tag);
    hca_.post_write(dst_node, body, bytes);
  });
}

void IbNode::set_receive_handler(ReceiveHandler fn) {
  app_handler_ = std::move(fn);
  install_dispatcher();
}

int IbNode::add_receive_handler(ReceiveHandler fn) {
  const int id = next_handler_id_++;
  extra_handlers_.emplace_back(id, std::move(fn));
  install_dispatcher();
  return id;
}

void IbNode::remove_receive_handler(int id) {
  for (auto it = extra_handlers_.begin(); it != extra_handlers_.end(); ++it) {
    if (it->first == id) {
      extra_handlers_.erase(it);
      return;
    }
  }
}

void IbNode::install_dispatcher() {
  if (dispatcher_installed_) return;
  dispatcher_installed_ = true;
  // One host_cq_poll per consumed CQE, however many handlers are
  // registered — the host wakes once and fans the message out.
  hca_.set_host_msg_handler([this](const IbWrite& w) {
    host_cpu_.exec(cfg_.host_cq_poll, [this, src = static_cast<int>(w.src_rank),
                                       tag = w.tag, value = w.value] {
      for (std::size_t i = 0; i < extra_handlers_.size(); ++i) {
        extra_handlers_[i].second(src, tag, value);
      }
      if (app_handler_) app_handler_(src, tag, value);
    });
  });
}

void IbNode::barrier_enter(std::uint32_t group, sim::EventCallback done) {
  host_cpu_.exec(cfg_.host_doorbell, [this, group, done = std::move(done)]() mutable {
    hca_.barrier_enter(group, [this, done = std::move(done)]() mutable {
      host_cpu_.exec(cfg_.host_cq_poll, std::move(done));
    });
  });
}

void IbNode::collective_enter(std::uint32_t group, std::int64_t value,
                              std::function<void(std::int64_t)> done) {
  host_cpu_.exec(cfg_.host_doorbell, [this, group, value, done = std::move(done)]() mutable {
    hca_.collective_enter(group, value,
                          [this, done = std::move(done)](std::int64_t result) mutable {
                            host_cpu_.exec(cfg_.host_cq_poll,
                                           [done = std::move(done), result]() mutable {
                                             done(result);
                                           });
                          });
  });
}

void IbNode::remote_fetch_add(int dst_node, std::uint32_t slot, std::int64_t addend,
                              std::function<void(std::int64_t)> done) {
  host_cpu_.exec(cfg_.host_wqe_build + cfg_.host_doorbell,
                 [this, dst_node, slot, addend, done = std::move(done)]() mutable {
    hca_.fetch_add(dst_node, slot, addend,
                   [this, done = std::move(done)](std::int64_t old) mutable {
                     host_cpu_.exec(cfg_.host_cq_poll,
                                    [done = std::move(done), old]() mutable { done(old); });
                   });
  });
}

void IbNode::remote_compare_swap(int dst_node, std::uint32_t slot, std::int64_t compare,
                                 std::int64_t swap,
                                 std::function<void(std::int64_t)> done) {
  host_cpu_.exec(cfg_.host_wqe_build + cfg_.host_doorbell,
                 [this, dst_node, slot, compare, swap, done = std::move(done)]() mutable {
    hca_.compare_swap(dst_node, slot, compare, swap,
                      [this, done = std::move(done)](std::int64_t old) mutable {
                        host_cpu_.exec(cfg_.host_cq_poll,
                                       [done = std::move(done), old]() mutable {
                                         done(old);
                                       });
                      });
  });
}

}  // namespace qmb::ib
