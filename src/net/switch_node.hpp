// Wormhole-routed crossbar switch element.
//
// In the cut-through latency model the switch contributes a fixed routing
// delay per traversal; port contention is captured by the occupancy of the
// outgoing Link. The object also counts traffic for observability.
#pragma once

#include <cstdint>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace qmb::net {

struct SwitchParams {
  sim::SimDuration routing_delay;  // header decode + crossbar setup per hop
};

class SwitchNode {
 public:
  SwitchNode(SwitchId id, SwitchParams params) : id_(id), params_(params) {}

  [[nodiscard]] SwitchId id() const { return id_; }
  [[nodiscard]] sim::SimDuration routing_delay() const { return params_.routing_delay; }

  void note_forwarded(std::uint32_t bytes) {
    ++packets_;
    bytes_ += bytes;
  }

  [[nodiscard]] std::uint64_t packets_forwarded() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes_forwarded() const { return bytes_; }

 private:
  SwitchId id_;
  SwitchParams params_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace qmb::net
