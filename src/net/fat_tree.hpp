// k-ary n-tree (fat tree) topology — the shape of Quadrics QsNet (quaternary
// fat tree of Elite switches) and of large Myrinet Clos networks.
//
// Stage-trunk model: at every level boundary the tree has full bisection
// (a subtree of k^j nodes owns k^j parallel up-links), which matches a k-ary
// n-tree exactly. Rather than instantiating each physical crossbar chip, one
// SwitchNode per (level, subtree) aggregates the chips crossed at that level
// — a route still pays exactly one routing delay per physical switch level
// crossed and one link occupancy per stage, which is what the latency and
// contention model needs. Trunk-link selection is a deterministic hash of
// (src, dst), emulating Quadrics/Myrinet dispersive source routing.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace qmb::net {

class FatTree final : public Topology {
 public:
  /// A tree with `levels` switch levels of arity `arity`; supports
  /// arity^levels node slots. `nics` may be less than the slot count (the
  /// paper's 8-node jobs on an Elite-16 use half the slots).
  FatTree(std::size_t arity, std::size_t levels, std::size_t nics);

  /// Smallest tree that fits `nics` nodes at the given arity.
  static FatTree fitting(std::size_t arity, std::size_t nics);

  [[nodiscard]] std::size_t max_nics() const override { return nics_; }
  [[nodiscard]] std::size_t num_links() const override { return 2 * slots_ * levels_; }
  [[nodiscard]] std::size_t num_switches() const override { return num_switches_; }
  [[nodiscard]] Route route(NicAddr src, NicAddr dst) const override;
  [[nodiscard]] Route route_via(NicAddr src, NicAddr dst, int top_level) const override;
  [[nodiscard]] Route broadcast_route(NicAddr src, NicAddr dst, int top) const override;
  [[nodiscard]] bool compute_route(NicAddr src, NicAddr dst, RouteScratch& out) const override;
  /// Cuts at the tree level whose subtree count lands closest to `target`:
  /// each size-k^l subtree of nodes becomes one domain, so any route between
  /// two domains climbs through at least one trunk stage.
  [[nodiscard]] int domain_cut(int target, std::vector<int>& nic_domain) const override;
  [[nodiscard]] int merge_level(NicAddr a, NicAddr b) const override;
  [[nodiscard]] int top_level() const override { return static_cast<int>(levels_); }

  [[nodiscard]] std::size_t arity() const { return arity_; }
  [[nodiscard]] std::size_t levels() const { return levels_; }
  [[nodiscard]] std::size_t slots() const { return slots_; }

 private:
  [[nodiscard]] std::size_t pow_k(std::size_t e) const { return pow_[e]; }
  [[nodiscard]] LinkId node_up(std::size_t p) const;
  [[nodiscard]] LinkId node_down(std::size_t p) const;
  /// Up trunk at stage j (1-based) out of the size-k^j subtree `group`.
  [[nodiscard]] LinkId up_trunk(std::size_t j, std::size_t group, std::size_t h) const;
  [[nodiscard]] LinkId down_trunk(std::size_t j, std::size_t group, std::size_t h) const;
  /// Aggregate switch at level j covering the size-k^(j+1) subtree `group`.
  [[nodiscard]] SwitchId sw(std::size_t j, std::size_t group) const;
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x);
  /// The one route builder: fills `out` allocation-free; route_impl wraps it.
  void route_into(std::size_t src, std::size_t dst, std::size_t top,
                  std::uint64_t trunk_hash, RouteScratch& out) const;
  [[nodiscard]] Route route_impl(std::size_t src, std::size_t dst, std::size_t top,
                                 std::uint64_t trunk_hash) const;

  std::size_t arity_;
  std::size_t levels_;
  std::size_t slots_;
  std::size_t nics_;
  std::size_t num_switches_ = 0;
  std::vector<std::size_t> pow_;          // pow_[e] = arity^e
  std::vector<std::size_t> sw_level_off_; // switch-id offset per level
};

}  // namespace qmb::net
