#include "net/fat_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace qmb::net {

FatTree::FatTree(std::size_t arity, std::size_t levels, std::size_t nics)
    : arity_(arity), levels_(levels), nics_(nics) {
  if (arity < 2) throw std::invalid_argument("fat tree arity must be >= 2");
  if (levels < 1) throw std::invalid_argument("fat tree needs >= 1 level");
  pow_.resize(levels_ + 1);
  pow_[0] = 1;
  for (std::size_t e = 1; e <= levels_; ++e) {
    pow_[e] = pow_[e - 1] * arity_;
    if (pow_[e] / arity_ != pow_[e - 1]) throw std::invalid_argument("fat tree too large");
  }
  slots_ = pow_[levels_];
  if (nics_ < 2 || nics_ > slots_) throw std::invalid_argument("nics out of range for tree");
  sw_level_off_.resize(levels_);
  for (std::size_t j = 0; j < levels_; ++j) {
    sw_level_off_[j] = num_switches_;
    num_switches_ += slots_ / pow_[j + 1];
  }
}

FatTree FatTree::fitting(std::size_t arity, std::size_t nics) {
  std::size_t levels = 1;
  std::size_t cap = arity;
  while (cap < nics) {
    cap *= arity;
    ++levels;
  }
  return FatTree(arity, levels, nics);
}

LinkId FatTree::node_up(std::size_t p) const {
  return LinkId(static_cast<std::int32_t>(p));
}

LinkId FatTree::node_down(std::size_t p) const {
  return LinkId(static_cast<std::int32_t>(slots_ + p));
}

LinkId FatTree::up_trunk(std::size_t j, std::size_t group, std::size_t h) const {
  assert(j >= 1 && j < levels_);
  assert(h < pow_[j]);
  const std::size_t base = 2 * slots_ + (j - 1) * 2 * slots_;
  return LinkId(static_cast<std::int32_t>(base + group * pow_[j] + h));
}

LinkId FatTree::down_trunk(std::size_t j, std::size_t group, std::size_t h) const {
  assert(j >= 1 && j < levels_);
  assert(h < pow_[j]);
  const std::size_t base = 2 * slots_ + (j - 1) * 2 * slots_ + slots_;
  return LinkId(static_cast<std::int32_t>(base + group * pow_[j] + h));
}

SwitchId FatTree::sw(std::size_t j, std::size_t group) const {
  assert(j < levels_);
  assert(group < slots_ / pow_[j + 1]);
  return SwitchId(static_cast<std::int32_t>(sw_level_off_[j] + group));
}

std::uint64_t FatTree::mix(std::uint64_t x) {
  // splitmix64 finalizer: deterministic trunk selection.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

int FatTree::merge_level(NicAddr a, NicAddr b) const {
  assert(a.valid() && b.valid());
  std::size_t x = a.index();
  std::size_t y = b.index();
  int l = 0;
  while (x != y) {
    x /= arity_;
    y /= arity_;
    ++l;
  }
  return l == 0 ? 1 : l;  // a == b still crosses the leaf switch (level 1 span)
}

void FatTree::route_into(std::size_t src, std::size_t dst, std::size_t top,
                         std::uint64_t trunk_hash, RouteScratch& out) const {
  assert(top >= 1 && top <= levels_);
  assert(2 * top <= RouteScratch::kMaxHops && "tree deeper than RouteScratch capacity");
  const std::uint64_t h64 = trunk_hash;
  std::size_t nl = 0;
  std::size_t ns = 0;

  out.links[nl++] = node_up(src);
  out.switches[ns++] = sw(0, src / arity_);
  for (std::size_t j = 1; j < top; ++j) {
    const std::size_t h = static_cast<std::size_t>(h64 % pow_[j]);
    out.links[nl++] = up_trunk(j, src / pow_[j], h);
    out.switches[ns++] = sw(j, src / pow_[j + 1]);
  }
  for (std::size_t j = top - 1; j >= 1; --j) {
    const std::size_t h = static_cast<std::size_t>(h64 % pow_[j]);
    out.links[nl++] = down_trunk(j, dst / pow_[j], h);
    out.switches[ns++] = sw(j - 1, dst / pow_[j]);
  }
  out.links[nl++] = node_down(dst);
  out.num_links = nl;
  out.num_switches = ns;
}

Route FatTree::route_impl(std::size_t src, std::size_t dst, std::size_t top,
                          std::uint64_t trunk_hash) const {
  RouteScratch s;
  route_into(src, dst, top, trunk_hash, s);
  Route r;
  r.links.assign(s.links.begin(), s.links.begin() + static_cast<std::ptrdiff_t>(s.num_links));
  r.switches.assign(s.switches.begin(),
                    s.switches.begin() + static_cast<std::ptrdiff_t>(s.num_switches));
  return r;
}

bool FatTree::compute_route(NicAddr src, NicAddr dst, RouteScratch& out) const {
  assert(src != dst && "no loopback routes");
  assert(src.index() < nics_ && dst.index() < nics_);
  if (2 * levels_ > RouteScratch::kMaxHops) return false;
  const std::uint64_t h =
      mix((static_cast<std::uint64_t>(src.index()) << 32) | dst.index());
  route_into(src.index(), dst.index(),
             static_cast<std::size_t>(merge_level(src, dst)), h, out);
  return true;
}

int FatTree::domain_cut(int target, std::vector<int>& nic_domain) const {
  nic_domain.assign(nics_, 0);
  if (target <= 1) return 1;
  // Candidate cuts are the tree levels: level l yields ceil(nics / k^l)
  // domains of whole size-k^l subtrees (l = 0 is one node per domain).
  // Pick the level landing closest to target; prefer the finer cut on ties.
  std::size_t best_level = levels_;
  long best_err = -1;
  for (std::size_t l = 0; l <= levels_; ++l) {
    const std::size_t count = (nics_ + pow_[l] - 1) / pow_[l];
    const long err = std::abs(static_cast<long>(count) - static_cast<long>(target));
    if (best_err < 0 || err < best_err || (err == best_err && l < best_level)) {
      best_err = err;
      best_level = l;
    }
  }
  int count = 0;
  for (std::size_t p = 0; p < nics_; ++p) {
    nic_domain[p] = static_cast<int>(p / pow_[best_level]);
    count = std::max(count, nic_domain[p] + 1);
  }
  return count;
}

Route FatTree::route(NicAddr src, NicAddr dst) const {
  assert(src != dst && "no loopback routes");
  assert(src.index() < nics_ && dst.index() < nics_);
  const std::uint64_t h =
      mix((static_cast<std::uint64_t>(src.index()) << 32) | dst.index());
  return route_impl(src.index(), dst.index(),
                    static_cast<std::size_t>(merge_level(src, dst)), h);
}

Route FatTree::route_via(NicAddr src, NicAddr dst, int top_level) const {
  assert(src.index() < nics_ && dst.index() < nics_);
  std::size_t top = static_cast<std::size_t>(top_level);
  if (src != dst) {
    top = std::max(top, static_cast<std::size_t>(merge_level(src, dst)));
  }
  if (top < 1) top = 1;
  if (top > levels_) top = levels_;
  const std::uint64_t h =
      mix((static_cast<std::uint64_t>(src.index()) << 32) | dst.index());
  return route_impl(src.index(), dst.index(), top, h);
}

Route FatTree::broadcast_route(NicAddr src, NicAddr dst, int top_level) const {
  assert(src.index() < nics_ && dst.index() < nics_);
  std::size_t top = static_cast<std::size_t>(top_level);
  if (src != dst) {
    top = std::max(top, static_cast<std::size_t>(merge_level(src, dst)));
  }
  if (top < 1) top = 1;
  if (top > levels_) top = levels_;
  // Trunk choice from src only: all copies of one broadcast share the
  // up-path and the per-subtree down trunks, so the Fabric can reserve each
  // physical link once for the whole replication.
  return route_impl(src.index(), dst.index(), top, mix(src.index()));
}

}  // namespace qmb::net
