#include "net/switch_node.hpp"

namespace qmb::net {}
