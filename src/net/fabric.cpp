#include "net/fabric.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace qmb::net {

Fabric::Fabric(sim::Engine& engine, std::unique_ptr<Topology> topology,
               FabricParams params, sim::Tracer* tracer)
    : engine_(engine),
      topology_(std::move(topology)),
      params_(params),
      tracer_(tracer),
      routes_(*topology_) {
  auto& reg = engine_.metrics();
  packets_sent_ = reg.counter("fabric.packets_sent");
  packets_delivered_ = reg.counter("fabric.packets_delivered");
  bytes_sent_ = reg.counter("fabric.bytes_sent");
  packets_dropped_ = reg.counter("fabric.packets_dropped");
  packet_bytes_ = reg.histogram("fabric.packet_bytes");
  nics_attached_ = reg.gauge("fabric.nics");
  if (tracer_) {
    trace_comp_ = tracer_->intern("fabric");
    trace_ev_inject_ = tracer_->intern("inject");
    trace_ev_deliver_ = tracer_->intern("deliver");
    trace_ev_drop_ = tracer_->intern("drop");
    trace_ev_bcast_ = tracer_->intern("broadcast");
  }
  links_.reserve(topology_->num_links());
  for (std::size_t i = 0; i < topology_->num_links(); ++i) {
    links_.emplace_back(params_.link);
  }
  switches_.reserve(topology_->num_switches());
  for (std::size_t i = 0; i < topology_->num_switches(); ++i) {
    switches_.emplace_back(SwitchId(static_cast<std::int32_t>(i)), params_.sw);
  }
  bcast_head_scratch_.assign(topology_->num_links(), {0, sim::SimTime{}});
  faults_.set_clock(&engine_);
  faults_.register_metrics(reg);
}

NicAddr Fabric::attach(DeliverFn deliver) {
  if (nics_.size() >= topology_->max_nics()) {
    throw std::runtime_error("fabric: all NIC ports in use");
  }
  nics_.push_back(std::move(deliver));
  nics_attached_.set(static_cast<std::int64_t>(nics_.size()));
  return NicAddr(static_cast<std::int32_t>(nics_.size() - 1));
}

sim::SimTime Fabric::traverse(RouteView route, std::uint32_t bytes, sim::SimTime start) {
  assert(route.links.size() == route.switches.size() + 1);
  sim::SimTime head = start;
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    Link& l = links_[route.links[i].index()];
    head = l.reserve(head, bytes) + l.latency();
    if (i < route.switches.size()) {
      SwitchNode& s = switches_[route.switches[i].index()];
      s.note_forwarded(bytes);
      head += s.routing_delay();
    }
  }
  // Cut-through: the tail trails the head by one serialization time.
  return head + links_[route.links.back().index()].serialization(bytes);
}

void Fabric::schedule_delivery(Packet&& p, sim::SimTime at) {
  // The Packet (inline payload included) rides in the callback's inline
  // storage — no shared_ptr, no heap.
  engine_.schedule_at(at, [this, p = std::move(p)]() mutable {
    ++packets_delivered_;
    if (tracer_ && tracer_->enabled()) {
      // Flow finish on the destination track: pairs with the injection's
      // flow start through the shared packet id.
      tracer_->record(engine_.now(), trace_comp_, trace_ev_deliver_, p.dst.value(),
                      p.src.value(), static_cast<std::int64_t>(p.wire_bytes),
                      static_cast<std::int64_t>(p.id), obs::FlowPhase::kFinish);
    }
    nics_[p.dst.index()](std::move(p));
  });
}

std::uint64_t Fabric::send(Packet&& p) {
  assert(p.src.valid() && p.src.index() < nics_.size() && "send from unattached NIC");
  assert(p.dst.valid() && p.dst.index() < nics_.size() && "send to unattached NIC");
  assert(p.src != p.dst && "fabric does not loop back");
  p.id = next_packet_id_++;
  const std::uint64_t flow = p.id;
  ++packets_sent_;
  bytes_sent_ += p.wire_bytes;
  packet_bytes_.record(p.wire_bytes);

  const FaultAction action = faults_.decide(p);
  const RouteView route = routes_.unicast(p.src, p.dst);
  sim::SimTime arrival = traverse(route, p.wire_bytes, engine_.now());
  if (action == FaultAction::kReorder) {
    // The packet still occupies the wire normally; it is merely held back
    // past later traffic, so it arrives out of order at the destination.
    arrival += faults_.last_reorder_delay();
  }
  if (action == FaultAction::kCorrupt) {
    // Corruption is invisible to the wire: full traversal and delivery,
    // discarded by the destination NIC's CRC check.
    p.corrupted = true;
  }

  if (tracer_ && tracer_->enabled()) {
    // A dropped packet never delivers, so it gets no flow start — a start
    // without a finish would render as a dangling arrow.
    const bool dropped = action == FaultAction::kDrop;
    tracer_->record(engine_.now(), trace_comp_,
                    dropped ? trace_ev_drop_ : trace_ev_inject_, p.src.value(),
                    p.dst.value(), static_cast<std::int64_t>(p.wire_bytes),
                    static_cast<std::int64_t>(flow),
                    dropped ? obs::FlowPhase::kNone : obs::FlowPhase::kStart);
  }

  if (action == FaultAction::kDrop) {  // lost on the wire
    ++packets_dropped_;
    return flow;
  }
  if (action == FaultAction::kDuplicate) {
    // The duplicate rides the same cached route; it still traverses the
    // links again (a second wire occupancy), which is the modeled behavior.
    Packet copy = p.duplicate();
    const sim::SimTime arrival2 = traverse(route, copy.wire_bytes, engine_.now());
    schedule_delivery(std::move(copy), arrival2);
  }
  schedule_delivery(std::move(p), arrival);
  return flow;
}

sim::SimTime Fabric::broadcast(NicAddr src, NicAddr first, NicAddr last,
                               std::uint32_t wire_bytes, PacketPayload body,
                               int min_top_level) {
  assert(first.value() <= last.value());
  assert(last.index() < nics_.size());
  // The broadcast climbs to at least the level spanning the whole range.
  int top = std::max(1, min_top_level);
  for (std::int32_t d = first.value(); d <= last.value(); ++d) {
    top = std::max(top, topology_->merge_level(src, NicAddr(d)));
  }
  // Each physical link carries the broadcast exactly once; the switches
  // fork the copies. Remember the head time after each traversed link
  // (plus its following switch) so shared prefixes ride the same
  // transmission. The scratch vector is epoch-stamped: entries from
  // earlier broadcasts are stale by epoch mismatch, so no per-call clear.
  const std::uint64_t epoch = ++bcast_epoch_;
  sim::SimTime latest = engine_.now();
  for (std::int32_t d = first.value(); d <= last.value(); ++d) {
    const NicAddr dst(d);
    Packet p(src, dst, wire_bytes, body.clone());
    p.id = next_packet_id_++;
    if (tracer_ && tracer_->enabled()) {
      // One flow start per replica: each copy draws its own arrow from the
      // source track even though shared links carry one transmission.
      tracer_->record(engine_.now(), trace_comp_, trace_ev_inject_, src.value(),
                      dst.value(), static_cast<std::int64_t>(wire_bytes),
                      static_cast<std::int64_t>(p.id), obs::FlowPhase::kStart);
    }
    ++packets_sent_;
    bytes_sent_ += wire_bytes;
    packet_bytes_.record(wire_bytes);
    const RouteView route = routes_.broadcast(src, dst, top);
    assert(route.links.size() == route.switches.size() + 1);
    sim::SimTime head = engine_.now();
    for (std::size_t i = 0; i < route.links.size(); ++i) {
      auto& [seen_epoch, head_after] = bcast_head_scratch_[route.links[i].index()];
      if (seen_epoch == epoch) {
        head = head_after;
        continue;
      }
      Link& l = links_[route.links[i].index()];
      head = l.reserve(head, wire_bytes) + l.latency();
      if (i < route.switches.size()) {
        SwitchNode& s = switches_[route.switches[i].index()];
        s.note_forwarded(wire_bytes);
        head += s.routing_delay();
      }
      seen_epoch = epoch;
      head_after = head;
    }
    const sim::SimTime arrival =
        head + links_[route.links.back().index()].serialization(wire_bytes);
    latest = std::max(latest, arrival);
    schedule_delivery(std::move(p), arrival);
  }
  if (tracer_ && tracer_->enabled()) {
    tracer_->record(engine_.now(), trace_comp_, trace_ev_bcast_, src.value(),
                    first.value(), last.value());
  }
  return latest;
}

sim::SimDuration Fabric::unloaded_latency(NicAddr src, NicAddr dst,
                                          std::uint32_t bytes) const {
  const RouteView route = routes_.unicast(src, dst);
  const Link probe(params_.link);
  sim::SimDuration total = probe.serialization(bytes);
  total += params_.link.latency * static_cast<std::int64_t>(route.links.size());
  total += params_.sw.routing_delay * static_cast<std::int64_t>(route.switches.size());
  return total;
}

}  // namespace qmb::net
