#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace qmb::net {

Fabric::Fabric(sim::Engine& engine, std::unique_ptr<Topology> topology,
               FabricParams params, sim::Tracer* tracer)
    : engine_(engine),
      topology_(std::move(topology)),
      params_(params),
      tracer_(tracer),
      routes_(*topology_) {
  auto& reg = engine_.metrics();
  packets_sent_ = reg.counter("fabric.packets_sent");
  packets_delivered_ = reg.counter("fabric.packets_delivered");
  bytes_sent_ = reg.counter("fabric.bytes_sent");
  packets_dropped_ = reg.counter("fabric.packets_dropped");
  packet_bytes_ = reg.histogram("fabric.packet_bytes");
  nics_attached_ = reg.gauge("fabric.nics");
  if (tracer_) {
    trace_comp_ = tracer_->intern("fabric");
    trace_ev_inject_ = tracer_->intern("inject");
    trace_ev_deliver_ = tracer_->intern("deliver");
    trace_ev_drop_ = tracer_->intern("drop");
    trace_ev_bcast_ = tracer_->intern("broadcast");
  }
  links_.reserve(topology_->num_links());
  for (std::size_t i = 0; i < topology_->num_links(); ++i) {
    links_.emplace_back(params_.link);
  }
  switches_.reserve(topology_->num_switches());
  for (std::size_t i = 0; i < topology_->num_switches(); ++i) {
    switches_.emplace_back(SwitchId(static_cast<std::int32_t>(i)), params_.sw);
  }
  bcast_head_scratch_.assign(topology_->num_links(), {0, sim::SimTime{}});
  faults_.set_clock(&engine_);
  faults_.register_metrics(reg);
}

int Fabric::enable_domains(int target_domains) {
  if (target_domains <= 1) return 1;
  if (!nics_.empty()) throw std::logic_error("fabric: enable_domains after NICs attached");
  if (!domains_.empty()) throw std::logic_error("fabric: enable_domains called twice");
  // The trace ring is single-threaded; traced runs stay sequential (the run
  // layer also refuses the combination, this guards direct constructions).
  if (tracer_ != nullptr) return 1;
  // Every unicast crosses >= 2 links (src uplink + dst downlink), so no send
  // can be observed anywhere before 2 * link latency has passed — that is
  // the conservative lookahead. Zero-latency links leave no safe window.
  const sim::SimDuration lookahead = params_.link.latency * 2;
  if (lookahead <= sim::SimDuration::zero()) return 1;
  std::vector<int> cut;
  const int count = topology_->domain_cut(target_domains, cut);
  if (count <= 1) return 1;
  engine_.enable_domains(count, lookahead);
  nic_domain_ = std::move(cut);
  domains_.resize(static_cast<std::size_t>(count));
  auto& reg = engine_.metrics();
  for (int d = 0; d < count; ++d) {
    DomainState& ds = domains_[static_cast<std::size_t>(d)];
    ds.packets_sent = reg.counter("fabric.packets_sent", d);
    ds.packets_delivered = reg.counter("fabric.packets_delivered", d);
    ds.bytes_sent = reg.counter("fabric.bytes_sent", d);
    ds.packet_bytes = reg.histogram("fabric.packet_bytes", d);
    ds.next_packet_id = (static_cast<std::uint64_t>(d) + 1) << 48;
  }
  engine_.set_window_hook([this] { drain_window(); });
  return count;
}

NicAddr Fabric::attach(DeliverFn deliver) {
  if (nics_.size() >= topology_->max_nics()) {
    throw std::runtime_error("fabric: all NIC ports in use");
  }
  nics_.push_back(std::move(deliver));
  nics_attached_.set(static_cast<std::int64_t>(nics_.size()));
  return NicAddr(static_cast<std::int32_t>(nics_.size() - 1));
}

sim::SimTime Fabric::traverse(RouteView route, std::uint32_t bytes, sim::SimTime start) {
  assert(route.links.size() == route.switches.size() + 1);
  sim::SimTime head = start;
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    Link& l = links_[route.links[i].index()];
    head = l.reserve(head, bytes) + l.latency();
    if (i < route.switches.size()) {
      SwitchNode& s = switches_[route.switches[i].index()];
      s.note_forwarded(bytes);
      head += s.routing_delay();
    }
  }
  // Cut-through: the tail trails the head by one serialization time.
  return head + links_[route.links.back().index()].serialization(bytes);
}

void Fabric::schedule_delivery(Packet&& p, sim::SimTime at) {
  // The Packet (inline payload included) rides in the callback's inline
  // storage — no shared_ptr, no heap.
  engine_.schedule_at(at, [this, p = std::move(p)]() mutable {
    ++packets_delivered_;
    if (tracer_ && tracer_->enabled()) {
      // Flow finish on the destination track: pairs with the injection's
      // flow start through the shared packet id.
      tracer_->record(engine_.now(), trace_comp_, trace_ev_deliver_, p.dst.value(),
                      p.src.value(), static_cast<std::int64_t>(p.wire_bytes),
                      static_cast<std::int64_t>(p.id), obs::FlowPhase::kFinish);
    }
    nics_[p.dst.index()](std::move(p));
  });
}

void Fabric::schedule_delivery_on(int domain, Packet&& p, sim::SimTime at,
                                  const sim::SchedPath& path, std::uint64_t lineage) {
  engine_.schedule_at_on(
      domain, at,
      [this, p = std::move(p)]() mutable {
        ++domains_[static_cast<std::size_t>(nic_domain_[p.dst.index()])]
              .packets_delivered;
        if (tracer_ && tracer_->enabled()) {
          tracer_->record(engine_.now(), trace_comp_, trace_ev_deliver_,
                          p.dst.value(), p.src.value(),
                          static_cast<std::int64_t>(p.wire_bytes),
                          static_cast<std::int64_t>(p.id), obs::FlowPhase::kFinish);
        }
        nics_[p.dst.index()](std::move(p));
      },
      &path, lineage);
}

void Fabric::drain_window() {
  // Merge all domain outboxes into the sequential traversal order:
  // (emit time, sched, lineage, domain, per-domain emit order). Per-domain
  // entries are already emit-ordered (events fire in time order), so the
  // sort only settles cross-domain interleaving. Equal-emit-time entries
  // order by the emitting events' causal stamps — the instant each event
  // was scheduled, then its chain's anchor-delivery injection stamp — which
  // is exactly the sequential engine's insertion order for those sends (see
  // the EventQueue tie-break contract). Only chains rooted in pre-run setup
  // (lineage 0, sched equal) can still tie across domains, and there the
  // (domain, emit order) fallback is the sequential rank order because
  // domain blocks ascend with rank.
  merge_scratch_.clear();
  for (std::uint32_t d = 0; d < domains_.size(); ++d) {
    const auto& outbox = domains_[d].outbox;
    for (std::uint32_t i = 0; i < outbox.size(); ++i) {
#ifndef NDEBUG
      // Tie-break contract, per-domain half: emits never go backwards.
      assert(i == 0 || outbox[i - 1].emit <= outbox[i].emit);
#endif
      merge_scratch_.push_back(
          MergeRef{outbox[i].emit, outbox[i].path, outbox[i].lineage, d, i});
    }
  }
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const MergeRef& a, const MergeRef& b) {
              if (a.emit != b.emit) return a.emit < b.emit;
              for (std::size_t h = 0; h < sim::SchedPath::kDepth; ++h) {
                if (a.path.hops[h] != b.path.hops[h])
                  return a.path.hops[h] < b.path.hops[h];
              }
              if (a.lineage != b.lineage) return a.lineage < b.lineage;
              if (a.domain != b.domain) return a.domain < b.domain;
              return a.idx < b.idx;
            });
  for (std::size_t i = 0; i < merge_scratch_.size(); ++i) {
    const MergeRef& m = merge_scratch_[i];
#ifndef NDEBUG
    // Tie-break contract, merged half: the traversal order is globally
    // time-sorted — equal-time entries were never reordered past a later
    // instant (and within one instant follow the causal-stamp order).
    assert(i == 0 || merge_scratch_[i - 1].emit <= m.emit);
#endif
    Deferred& e = domains_[m.domain].outbox[m.idx];
    const RouteView route = routes_.unicast(e.packet.src, e.packet.dst, route_scratch_);
    const sim::SimTime arrival = traverse(route, e.packet.wire_bytes, e.emit);
    // The conservative guarantee that makes deferral safe: nothing can
    // arrive before the window that just closed ended.
    assert(arrival >= engine_.window_floor());
    // The delivery's stamp: scheduled at its emit instant with the sender's
    // ancestry behind it, anchored by this injection (stamps ascend in
    // merge order, so descendants of earlier deliveries sort first — the
    // sequential execution order).
    const sim::SchedPath dpath{
        {e.emit, e.path.hops[0], e.path.hops[1], e.path.hops[2]}};
    schedule_delivery_on(nic_domain_[e.packet.dst.index()], std::move(e.packet),
                         arrival, dpath, /*lineage=*/++inject_stamp_);
  }
  for (auto& d : domains_) d.outbox.clear();
}

std::uint64_t Fabric::send(Packet&& p) {
  assert(p.src.valid() && p.src.index() < nics_.size() && "send from unattached NIC");
  assert(p.dst.valid() && p.dst.index() < nics_.size() && "send to unattached NIC");
  assert(p.src != p.dst && "fabric does not loop back");

  if (!domains_.empty()) {
    // PDES: defer everything to the window merge. No wire state is touched
    // here — links, switches, and the route scratch are coordinator-owned.
    // Eligibility guarantees a fault-free run (asserted), so skipping the
    // fault decision is exactly what the sequential path would do.
    assert(faults_.rule_count() == 0 && "PDES runs must be fault-free");
    DomainState& ds = domains_[static_cast<std::size_t>(nic_domain_[p.src.index()])];
    p.id = ds.next_packet_id++;
    const std::uint64_t flow = p.id;
    ++ds.packets_sent;
    ds.bytes_sent += p.wire_bytes;
    ds.packet_bytes.record(p.wire_bytes);
    const sim::SimTime emit = engine_.now();
    if (tracer_ && tracer_->enabled()) {
      tracer_->record(emit, trace_comp_, trace_ev_inject_, p.src.value(), p.dst.value(),
                      static_cast<std::int64_t>(p.wire_bytes),
                      static_cast<std::int64_t>(flow), obs::FlowPhase::kStart);
    }
    ds.outbox.push_back(Deferred{emit, engine_.current_event_path(),
                                 engine_.current_event_lineage(), std::move(p)});
    return flow;
  }

  p.id = next_packet_id_++;
  const std::uint64_t flow = p.id;
  ++packets_sent_;
  bytes_sent_ += p.wire_bytes;
  packet_bytes_.record(p.wire_bytes);

  const FaultAction action = faults_.decide(p);
  const RouteView route = routes_.unicast(p.src, p.dst, route_scratch_);
  sim::SimTime arrival = traverse(route, p.wire_bytes, engine_.now());
  if (action == FaultAction::kReorder) {
    // The packet still occupies the wire normally; it is merely held back
    // past later traffic, so it arrives out of order at the destination.
    arrival += faults_.last_reorder_delay();
  }
  if (action == FaultAction::kCorrupt) {
    // Corruption is invisible to the wire: full traversal and delivery,
    // discarded by the destination NIC's CRC check.
    p.corrupted = true;
  }

  if (tracer_ && tracer_->enabled()) {
    // A dropped packet never delivers, so it gets no flow start — a start
    // without a finish would render as a dangling arrow.
    const bool dropped = action == FaultAction::kDrop;
    tracer_->record(engine_.now(), trace_comp_,
                    dropped ? trace_ev_drop_ : trace_ev_inject_, p.src.value(),
                    p.dst.value(), static_cast<std::int64_t>(p.wire_bytes),
                    static_cast<std::int64_t>(flow),
                    dropped ? obs::FlowPhase::kNone : obs::FlowPhase::kStart);
  }

  if (action == FaultAction::kDrop) {  // lost on the wire
    ++packets_dropped_;
    return flow;
  }
  if (action == FaultAction::kDuplicate) {
    // The duplicate rides the same cached route; it still traverses the
    // links again (a second wire occupancy), which is the modeled behavior.
    Packet copy = p.duplicate();
    const sim::SimTime arrival2 = traverse(route, copy.wire_bytes, engine_.now());
    schedule_delivery(std::move(copy), arrival2);
  }
  schedule_delivery(std::move(p), arrival);
  return flow;
}

sim::SimTime Fabric::broadcast(NicAddr src, NicAddr first, NicAddr last,
                               std::uint32_t wire_bytes, PacketPayload body,
                               int min_top_level) {
  assert(first.value() <= last.value());
  assert(last.index() < nics_.size());
  // Hardware broadcast mutates fabric-wide shared state (the epoch scratch,
  // every trunk on the climb); the barriers that use it (gsync/hgsync) are
  // excluded from PDES eligibility, so this path stays sequential-only.
  assert(domains_.empty() && "hardware broadcast requires a sequential engine");
  // The broadcast climbs to at least the level spanning the whole range.
  int top = std::max(1, min_top_level);
  for (std::int32_t d = first.value(); d <= last.value(); ++d) {
    top = std::max(top, topology_->merge_level(src, NicAddr(d)));
  }
  // Each physical link carries the broadcast exactly once; the switches
  // fork the copies. Remember the head time after each traversed link
  // (plus its following switch) so shared prefixes ride the same
  // transmission. The scratch vector is epoch-stamped: entries from
  // earlier broadcasts are stale by epoch mismatch, so no per-call clear.
  const std::uint64_t epoch = ++bcast_epoch_;
  sim::SimTime latest = engine_.now();
  for (std::int32_t d = first.value(); d <= last.value(); ++d) {
    const NicAddr dst(d);
    Packet p(src, dst, wire_bytes, body.clone());
    p.id = next_packet_id_++;
    if (tracer_ && tracer_->enabled()) {
      // One flow start per replica: each copy draws its own arrow from the
      // source track even though shared links carry one transmission.
      tracer_->record(engine_.now(), trace_comp_, trace_ev_inject_, src.value(),
                      dst.value(), static_cast<std::int64_t>(wire_bytes),
                      static_cast<std::int64_t>(p.id), obs::FlowPhase::kStart);
    }
    ++packets_sent_;
    bytes_sent_ += wire_bytes;
    packet_bytes_.record(wire_bytes);
    const RouteView route = routes_.broadcast(src, dst, top);
    assert(route.links.size() == route.switches.size() + 1);
    sim::SimTime head = engine_.now();
    for (std::size_t i = 0; i < route.links.size(); ++i) {
      auto& [seen_epoch, head_after] = bcast_head_scratch_[route.links[i].index()];
      if (seen_epoch == epoch) {
        head = head_after;
        continue;
      }
      Link& l = links_[route.links[i].index()];
      head = l.reserve(head, wire_bytes) + l.latency();
      if (i < route.switches.size()) {
        SwitchNode& s = switches_[route.switches[i].index()];
        s.note_forwarded(wire_bytes);
        head += s.routing_delay();
      }
      seen_epoch = epoch;
      head_after = head;
    }
    const sim::SimTime arrival =
        head + links_[route.links.back().index()].serialization(wire_bytes);
    latest = std::max(latest, arrival);
    schedule_delivery(std::move(p), arrival);
  }
  if (tracer_ && tracer_->enabled()) {
    tracer_->record(engine_.now(), trace_comp_, trace_ev_bcast_, src.value(),
                    first.value(), last.value());
  }
  return latest;
}

sim::SimDuration Fabric::unloaded_latency(NicAddr src, NicAddr dst,
                                          std::uint32_t bytes) const {
  // Only the hop counts matter. Prefer the pure computed route — protocol
  // code calls this from PDES worker threads, where mutating the shared
  // memo table would race; compute_route touches nothing shared.
  std::size_t num_links;
  std::size_t num_switches;
  RouteScratch scratch;
  if (topology_->compute_route(src, dst, scratch)) {
    num_links = scratch.num_links;
    num_switches = scratch.num_switches;
  } else if (domains_.empty()) {
    const RouteView route = routes_.unicast(src, dst);
    num_links = route.links.size();
    num_switches = route.switches.size();
  } else {
    // Unstructured topology under PDES: build a throwaway Route instead of
    // touching the memo (route() is const and allocates fresh vectors).
    const Route route = topology_->route(src, dst);
    num_links = route.links.size();
    num_switches = route.switches.size();
  }
  const Link probe(params_.link);
  sim::SimDuration total = probe.serialization(bytes);
  total += params_.link.latency * static_cast<std::int64_t>(num_links);
  total += params_.sw.routing_delay * static_cast<std::int64_t>(num_switches);
  return total;
}

}  // namespace qmb::net
