// Unidirectional link with propagation latency, serialization bandwidth and
// FIFO occupancy.
//
// Full-duplex cables are modeled as two Link objects. Occupancy follows the
// LogGP-style "busy until" discipline: a packet's serialization reserves the
// link starting no earlier than the previous packet's tail.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace qmb::net {

struct LinkParams {
  sim::SimDuration latency;        // wire propagation delay of the head flit
  double bytes_per_second = 0.0;   // serialization bandwidth
};

class Link {
 public:
  explicit Link(LinkParams params) : params_(params) {}

  /// Time to clock `bytes` onto the wire.
  [[nodiscard]] sim::SimDuration serialization(std::uint32_t bytes) const {
    const double picos = static_cast<double>(bytes) / params_.bytes_per_second * 1e12;
    return sim::SimDuration(static_cast<std::int64_t>(picos + 0.5));
  }

  [[nodiscard]] sim::SimDuration latency() const { return params_.latency; }

  /// Reserves the link for a packet whose head is ready at `earliest`.
  /// Returns when injection actually starts (>= earliest under contention).
  sim::SimTime reserve(sim::SimTime earliest, std::uint32_t bytes) {
    const sim::SimTime start = earliest > free_at_ ? earliest : free_at_;
    free_at_ = start + serialization(bytes);
    ++packets_;
    bytes_ += bytes;
    return start;
  }

  [[nodiscard]] sim::SimTime free_at() const { return free_at_; }
  [[nodiscard]] std::uint64_t packets_carried() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_; }

 private:
  LinkParams params_;
  sim::SimTime free_at_ = sim::SimTime::zero();
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace qmb::net
