// Strongly typed identifiers for fabric entities (I.4: precise interfaces).
//
// All are thin 32-bit indices; the tag type prevents, e.g., passing a switch
// index where a NIC address is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace qmb::net {

template <class Tag>
class Id32 {
 public:
  constexpr Id32() = default;
  constexpr explicit Id32(std::int32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::int32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }
  [[nodiscard]] constexpr std::size_t index() const { return static_cast<std::size_t>(v_); }

  friend constexpr auto operator<=>(Id32, Id32) = default;

 private:
  std::int32_t v_ = -1;
};

/// Address of a NIC attached to a fabric (equals the node rank in clusters
/// built by core::Cluster, which attaches one NIC per node in rank order).
using NicAddr = Id32<struct NicAddrTag>;
using SwitchId = Id32<struct SwitchIdTag>;
using LinkId = Id32<struct LinkIdTag>;

}  // namespace qmb::net

template <class Tag>
struct std::hash<qmb::net::Id32<Tag>> {
  std::size_t operator()(qmb::net::Id32<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
