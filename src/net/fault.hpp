// Deterministic fault injection at the fabric boundary.
//
// Rules match packets by (src, dst) filters and decide per-match whether to
// drop or duplicate: either the N-th matching packet (exact, for targeted
// protocol tests) or with a probability drawn from a seeded RNG (for soak
// tests). Myrinet provides no link-level reliability, so the MCP and the
// collective protocol must recover from anything injected here; Quadrics is
// hardware-reliable and normally runs with no rules installed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace qmb::net {

enum class FaultAction { kDeliver, kDrop, kDuplicate };

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Drops/duplicates the `ordinal`-th (1-based) packet matching the filter.
  void add_nth_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                    std::uint64_t ordinal, FaultAction action = FaultAction::kDrop);

  /// Drops/duplicates each matching packet with probability `p`.
  void add_random_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                       double p, std::uint64_t seed,
                       FaultAction action = FaultAction::kDrop);

  /// Drops every matching packet injected within [from, until): a link or
  /// path blackout. Protocols must ride it out on their retransmission
  /// machinery and resume afterwards.
  void add_blackout(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                    sim::SimTime from, sim::SimTime until);

  /// Installs the clock used by time-windowed rules (the Fabric wires its
  /// engine in automatically).
  void set_clock(const sim::Engine* engine) { engine_ = engine; }

  void clear() { rules_.clear(); }

  /// Consulted once per injected packet; first firing rule wins.
  [[nodiscard]] FaultAction decide(const Packet& p);

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }

 private:
  struct Rule {
    std::optional<NicAddr> src;
    std::optional<NicAddr> dst;
    FaultAction action = FaultAction::kDrop;
    // Modes: ordinal > 0 = nth-match; window = blackout; else probabilistic.
    std::uint64_t ordinal = 0;
    std::uint64_t matches = 0;
    double prob = 0.0;
    sim::Rng rng;
    bool windowed = false;
    sim::SimTime from;
    sim::SimTime until;
  };

  static bool matches(const Rule& r, const Packet& p);

  const sim::Engine* engine_ = nullptr;
  std::vector<Rule> rules_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

}  // namespace qmb::net
