// Deterministic fault injection at the fabric boundary.
//
// Rules match packets by (src, dst) filters and decide per-match what the
// wire does to them: drop, duplicate, reorder (delay past later traffic),
// or corrupt (the packet arrives, fails the receiving NIC's CRC check, and
// is discarded there). Firing modes: the N-th matching packet (exact, for
// targeted protocol tests), a probability drawn from a seeded RNG (soak
// tests), or a simulated-time window (blackouts). Myrinet provides no
// link-level reliability, so the MCP and the collective protocol must
// recover from anything injected here; Quadrics is hardware-reliable and
// normally runs with no rules installed.
//
// Rules are described by FaultSpec — a plain serializable struct the
// fuzzer's repro artifacts round-trip through JSON — and installed either
// directly (install) or through the fluent builder:
//
//   faults.rule().src(2).dst(4).nth(3).drop();
//   faults.rule().prob(0.01, seed).duplicate();
//   faults.rule().window(from, until).drop();          // blackout
//   faults.rule().nth(2).reorder(sim::microseconds(10));
//
// The historical add_nth_rule/add_random_rule/add_blackout entry points
// remain as thin wrappers over the builder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace qmb::net {

enum class FaultAction { kDeliver, kDrop, kDuplicate, kReorder, kCorrupt };

[[nodiscard]] std::string_view to_string(FaultAction a);
[[nodiscard]] std::optional<FaultAction> parse_fault_action(std::string_view s);

/// One fault rule as plain data: (src, dst) filter, action, and exactly one
/// firing mode — nth > 0, prob > 0, or a [from_ps, until_ps) time window.
/// Serializable by design (integers and doubles only) so fuzzer repro
/// artifacts and the CLI --fault grammar both map onto it 1:1.
struct FaultSpec {
  std::int32_t src = -1;  // -1 = any source
  std::int32_t dst = -1;  // -1 = any destination
  FaultAction action = FaultAction::kDrop;
  std::uint64_t nth = 0;     // fire on the nth (1-based) match
  double prob = 0.0;         // fire per-match with this probability
  std::uint64_t seed = 0;    // RNG seed for probabilistic rules
  std::int64_t from_ps = 0;  // window mode when until_ps > from_ps
  std::int64_t until_ps = 0;
  std::int64_t delay_ps = 0;  // reorder: extra delivery delay

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Empty string when the spec is installable; otherwise a printable error
/// (bad mode combination, kDeliver action, missing reorder delay, ...).
[[nodiscard]] std::string validate(const FaultSpec& spec);

class FaultInjector;

/// Fluent rule construction; obtained from FaultInjector::rule(). Filter
/// and mode setters chain; the action call (drop/duplicate/corrupt/
/// reorder) installs the rule and returns the injector.
class FaultRuleBuilder {
 public:
  FaultRuleBuilder& src(std::int32_t node) {
    spec_.src = node;
    return *this;
  }
  FaultRuleBuilder& dst(std::int32_t node) {
    spec_.dst = node;
    return *this;
  }
  /// Fire on the nth (1-based) matching packet.
  FaultRuleBuilder& nth(std::uint64_t ordinal) {
    spec_.nth = ordinal;
    return *this;
  }
  /// Fire per-match with probability p (seeded, deterministic).
  FaultRuleBuilder& prob(double p, std::uint64_t seed) {
    spec_.prob = p;
    spec_.seed = seed;
    return *this;
  }
  /// Fire on every match injected within [from, until).
  FaultRuleBuilder& window(sim::SimTime from, sim::SimTime until) {
    spec_.from_ps = from.picos();
    spec_.until_ps = until.picos();
    return *this;
  }

  FaultInjector& drop();
  FaultInjector& duplicate();
  FaultInjector& corrupt();
  FaultInjector& reorder(sim::SimDuration delay);

 private:
  friend class FaultInjector;
  explicit FaultRuleBuilder(FaultInjector& fi) : fi_(fi) {}
  FaultInjector& fi_;
  FaultSpec spec_;
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Starts a fluent rule: faults.rule().src(2).dst(4).nth(3).drop().
  [[nodiscard]] FaultRuleBuilder rule() { return FaultRuleBuilder(*this); }

  /// Installs a rule from its data form. Throws std::invalid_argument with
  /// validate()'s message on a malformed spec.
  void install(const FaultSpec& spec);

  /// Installs every rule of a plan, in order (first firing rule wins).
  void install(const std::vector<FaultSpec>& plan) {
    for (const FaultSpec& s : plan) install(s);
  }

  // --- legacy entry points, kept as thin wrappers over the builder ---

  /// Drops/duplicates the `ordinal`-th (1-based) packet matching the filter.
  void add_nth_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                    std::uint64_t ordinal, FaultAction action = FaultAction::kDrop);

  /// Drops/duplicates each matching packet with probability `p`.
  void add_random_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                       double p, std::uint64_t seed,
                       FaultAction action = FaultAction::kDrop);

  /// Drops every matching packet injected within [from, until): a link or
  /// path blackout. Protocols must ride it out on their retransmission
  /// machinery and resume afterwards.
  void add_blackout(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                    sim::SimTime from, sim::SimTime until);

  /// Installs the clock used by time-windowed rules (the Fabric wires its
  /// engine in automatically).
  void set_clock(const sim::Engine* engine) { engine_ = engine; }

  /// Binds the per-action tallies to "fault.*" counters in `reg` so they
  /// appear in metric snapshots (the Fabric wires this automatically).
  /// Standalone injectors work unbound; the plain getters always count.
  void register_metrics(obs::MetricRegistry& reg);

  void clear() { rules_.clear(); }

  /// Consulted once per injected packet; first firing rule wins.
  [[nodiscard]] FaultAction decide(const Packet& p);

  /// Extra delivery delay of the most recent kReorder decision.
  [[nodiscard]] sim::SimDuration last_reorder_delay() const { return last_delay_; }

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }

 private:
  struct Rule {
    FaultSpec spec;
    std::uint64_t matches = 0;
    sim::Rng rng;  // probabilistic rules only
  };

  static bool matches(const Rule& r, const Packet& p);

  const sim::Engine* engine_ = nullptr;
  std::vector<Rule> rules_;
  sim::SimDuration last_delay_ = sim::SimDuration::zero();
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t corrupted_ = 0;
  // Unbound (no-op) until register_metrics; mirror the tallies above.
  obs::Counter dropped_metric_;
  obs::Counter duplicated_metric_;
  obs::Counter reordered_metric_;
  obs::Counter corrupted_metric_;
};

}  // namespace qmb::net
