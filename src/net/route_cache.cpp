#include "net/route_cache.hpp"

#include <cassert>

namespace qmb::net {

namespace {
// Dense table budget: 1M slots (4 MB) covers the 512-node extrapolation
// sweeps; anything larger falls back to hashing.
constexpr std::size_t kMaxDenseSlots = std::size_t{1} << 20;

std::uint64_t pair_key(NicAddr src, NicAddr dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.value())) << 32) |
         static_cast<std::uint32_t>(dst.value());
}

std::uint64_t bcast_key(NicAddr src, NicAddr dst, int top) {
  // NIC indices are < 2^24 in any configuration we instantiate; pack
  // (src, dst, top) into one 64-bit key.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.value())) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst.value())) << 16) |
         static_cast<std::uint16_t>(top);
}
}  // namespace

RouteCache::RouteCache(const Topology& topology)
    : topology_(topology), num_nics_(topology.max_nics()) {
  dense_ = num_nics_ * num_nics_ <= kMaxDenseSlots;
  if (dense_) dense_slots_.assign(num_nics_ * num_nics_, 0);
}

std::uint32_t RouteCache::intern(const Route& route) {
  CachedRoute cached;
  cached.num_links = static_cast<std::uint32_t>(route.links.size());
  cached.num_switches = static_cast<std::uint32_t>(route.switches.size());
  LinkId* links = link_arena_.allocate(route.links.size());
  SwitchId* switches = switch_arena_.allocate(route.switches.size());
  for (std::size_t i = 0; i < route.links.size(); ++i) links[i] = route.links[i];
  for (std::size_t i = 0; i < route.switches.size(); ++i) switches[i] = route.switches[i];
  cached.links = links;
  cached.switches = switches;
  entries_.push_back(cached);
  return static_cast<std::uint32_t>(entries_.size());  // slot stored +1
}

RouteView RouteCache::unicast(NicAddr src, NicAddr dst) {
  assert(src.valid() && dst.valid() && src != dst);
  assert(static_cast<std::size_t>(src.index()) < num_nics_);
  assert(static_cast<std::size_t>(dst.index()) < num_nics_);
  if (dense_) {
    std::uint32_t& slot = dense_slots_[src.index() * num_nics_ + dst.index()];
    if (slot != 0) {
      ++hits_;
      return view_of(entries_[slot - 1]);
    }
    ++misses_;
    slot = intern(topology_.route(src, dst));
    return view_of(entries_[slot - 1]);
  }
  const std::uint64_t key = pair_key(src, dst);
  if (const auto it = sparse_slots_.find(key); it != sparse_slots_.end()) {
    ++hits_;
    return view_of(entries_[it->second - 1]);
  }
  ++misses_;
  const std::uint32_t slot = intern(topology_.route(src, dst));
  sparse_slots_.emplace(key, slot);
  return view_of(entries_[slot - 1]);
}

RouteView RouteCache::unicast(NicAddr src, NicAddr dst, RouteScratch& scratch) {
  assert(src.valid() && dst.valid() && src != dst);
  if (topology_.compute_route(src, dst, scratch)) {
    ++computed_;
    return {std::span<const LinkId>(scratch.links.data(), scratch.num_links),
            std::span<const SwitchId>(scratch.switches.data(), scratch.num_switches)};
  }
  return unicast(src, dst);
}

RouteView RouteCache::broadcast(NicAddr src, NicAddr dst, int top) {
  assert(src.valid() && dst.valid());
  const std::uint64_t key = bcast_key(src, dst, top);
  if (const auto it = bcast_slots_.find(key); it != bcast_slots_.end()) {
    ++hits_;
    return view_of(entries_[it->second - 1]);
  }
  ++misses_;
  const std::uint32_t slot = intern(topology_.broadcast_route(src, dst, top));
  bcast_slots_.emplace(key, slot);
  return view_of(entries_[slot - 1]);
}

}  // namespace qmb::net
