// Lazy route memoization for the fabric hot path.
//
// Topology::route is a virtual call that builds a fresh Route (two heap
// vectors) on every invocation. Topologies are immutable after
// construction, so the Fabric can instead memoize each (src, dst) — and
// each (src, dst, top_level) broadcast variant — the first time it is
// asked for, and hand out span-based RouteViews into a stable arena from
// then on. Steady-state sends and broadcasts therefore perform no
// allocation and no virtual dispatch.
//
// Storage discipline: link/switch ids live in chunked arenas
// (vector<unique_ptr<T[]>>), so previously handed-out views are never
// invalidated by later inserts. There is no eviction and no invalidation
// hook — the cache's correctness rests on topology immutability, which is
// asserted by the exhaustive equivalence tests in test_route_cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace qmb::net {

/// Non-owning view of a cached route. Valid for the cache's lifetime.
struct RouteView {
  std::span<const LinkId> links;       // size == switches.size() + 1
  std::span<const SwitchId> switches;
};

class RouteCache {
 public:
  explicit RouteCache(const Topology& topology);

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// Memoized Topology::route(src, dst). Precondition: src != dst, both
  /// within max_nics() — same contract as the underlying virtual.
  [[nodiscard]] RouteView unicast(NicAddr src, NicAddr dst);

  /// Computed O(1) unicast for structured topologies: fills the caller's
  /// scratch via Topology::compute_route (no memo entry, no allocation —
  /// the table stops growing O(N^2) on 4096-node fat trees) and returns a
  /// view into it, valid until the scratch is reused. Topologies without a
  /// closed form fall back to the memoized path.
  [[nodiscard]] RouteView unicast(NicAddr src, NicAddr dst, RouteScratch& scratch);

  /// Memoized Topology::broadcast_route(src, dst, top).
  [[nodiscard]] RouteView broadcast(NicAddr src, NicAddr dst, int top);

  /// Host-side instrumentation for tests and benchmarks; never part of
  /// simulated state or fingerprints.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t computed() const { return computed_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }

 private:
  // Chunked append-only arena: grows without relocating prior elements.
  template <class T>
  class Arena {
   public:
    [[nodiscard]] T* allocate(std::size_t count) {
      if (count == 0) return nullptr;
      if (count > kChunk) {  // oversize route gets a dedicated chunk
        chunks_.push_back(std::make_unique<T[]>(count));
        return chunks_.back().get();
      }
      if (chunks_.empty() || used_ + count > kChunk) {
        chunks_.push_back(std::make_unique<T[]>(kChunk));
        used_ = 0;
      }
      T* out = chunks_.back().get() + used_;
      used_ += count;
      return out;
    }

   private:
    static constexpr std::size_t kChunk = 1024;
    std::vector<std::unique_ptr<T[]>> chunks_;
    std::size_t used_ = kChunk;
  };

  struct CachedRoute {
    const LinkId* links = nullptr;
    const SwitchId* switches = nullptr;
    std::uint32_t num_links = 0;
    std::uint32_t num_switches = 0;
  };

  [[nodiscard]] RouteView view_of(const CachedRoute& r) const {
    return {std::span<const LinkId>(r.links, r.num_links),
            std::span<const SwitchId>(r.switches, r.num_switches)};
  }

  /// Copies a freshly computed Route into the arenas; returns its slot.
  std::uint32_t intern(const Route& route);

  const Topology& topology_;
  std::size_t num_nics_;

  // Unicast: dense n*n slot table when affordable, hash map otherwise.
  // Slot value 0 means empty (entries_ index is stored +1).
  bool dense_ = false;
  std::vector<std::uint32_t> dense_slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> sparse_slots_;
  // Broadcast routes are keyed (src, dst, top) and always hashed; there
  // are few distinct tops in practice.
  std::unordered_map<std::uint64_t, std::uint32_t> bcast_slots_;

  std::vector<CachedRoute> entries_;
  Arena<LinkId> link_arena_;
  Arena<SwitchId> switch_arena_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t computed_ = 0;
};

}  // namespace qmb::net
