#include "net/link.hpp"

// Header-only today; the TU anchors the target and keeps room for growth
// (e.g. credit-based flow control) without touching the build.
namespace qmb::net {}
