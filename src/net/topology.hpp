// Topology interface: maps (src NIC, dst NIC) to an ordered route of links
// and switches. The Fabric owns the Link/SwitchNode instances; a Topology is
// pure structure.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "net/types.hpp"

namespace qmb::net {

struct Route {
  std::vector<LinkId> links;       // traversal order; size == switches.size() + 1
  std::vector<SwitchId> switches;  // switches crossed between consecutive links
};

/// Caller-owned scratch a structured topology fills in compute_route: fixed
/// capacity, no heap, no shared state — safe from any thread. 32 hops covers
/// a binary fat tree of 2^16 nodes (2 * levels links per route).
struct RouteScratch {
  static constexpr std::size_t kMaxHops = 32;
  std::array<LinkId, kMaxHops> links;
  std::array<SwitchId, kMaxHops> switches;
  std::size_t num_links = 0;
  std::size_t num_switches = 0;
};

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of NIC attachment points.
  [[nodiscard]] virtual std::size_t max_nics() const = 0;
  /// Total unidirectional links to instantiate.
  [[nodiscard]] virtual std::size_t num_links() const = 0;
  /// Total switch elements to instantiate.
  [[nodiscard]] virtual std::size_t num_switches() const = 0;

  /// Unicast route. Precondition: src != dst, both < max_nics().
  [[nodiscard]] virtual Route route(NicAddr src, NicAddr dst) const = 0;

  /// O(1) allocation-free unicast route for structured topologies: fills
  /// `out` and returns true, identical hop-for-hop to route(). Returns false
  /// when the topology has no closed form (callers fall back to the
  /// memoizing path). Must be pure — no memoization, no mutation — so it is
  /// callable from any PDES worker thread.
  [[nodiscard]] virtual bool compute_route(NicAddr src, NicAddr dst, RouteScratch& out) const {
    (void)src; (void)dst; (void)out;
    return false;
  }

  /// Partitions the NIC index space into locality-preserving execution
  /// domains for the conservative PDES engine, aiming for roughly `target`
  /// domains. Fills `nic_domain` (resized to max_nics()) with each NIC's
  /// domain id (dense, 0-based, non-decreasing in NIC index) and returns the
  /// domain count. The base topology cannot be cut: one domain.
  [[nodiscard]] virtual int domain_cut(int target, std::vector<int>& nic_domain) const;

  /// Route forced through (at least) tree level `top_level`; used to model
  /// hardware broadcast, which always climbs to the level spanning the whole
  /// destination range. Defaults to the plain unicast route for topologies
  /// without a level structure.
  [[nodiscard]] virtual Route route_via(NicAddr src, NicAddr dst, int top_level) const {
    (void)top_level;
    return route(src, dst);
  }

  /// Smallest tree level whose subtree contains both NICs (0 for a single
  /// crossbar). Used by hardware-broadcast timing.
  [[nodiscard]] virtual int merge_level(NicAddr a, NicAddr b) const {
    (void)a; (void)b;
    return 0;
  }

  /// Height of the tree (0 for a single crossbar). A hardware broadcast
  /// always climbs to this level — QsNet broadcasts through the root of the
  /// fat tree regardless of the destination range.
  [[nodiscard]] virtual int top_level() const { return 0; }

  /// Route used by hardware broadcast replication: like route_via, but the
  /// up-path trunk choice depends only on `src`, so every copy of one
  /// broadcast shares the same up-path links (the switches replicate at the
  /// top, they do not re-send from the source). Defaults to route_via.
  [[nodiscard]] virtual Route broadcast_route(NicAddr src, NicAddr dst, int top) const {
    return route_via(src, dst, top);
  }
};

/// Single crossbar switch with `ports` full-duplex NIC cables — the shape of
/// the paper's 8- and 16-node Myrinet 2000 clusters.
class SingleCrossbar final : public Topology {
 public:
  explicit SingleCrossbar(std::size_t ports);

  [[nodiscard]] std::size_t max_nics() const override { return ports_; }
  [[nodiscard]] std::size_t num_links() const override { return 2 * ports_; }
  [[nodiscard]] std::size_t num_switches() const override { return 1; }
  [[nodiscard]] Route route(NicAddr src, NicAddr dst) const override;
  [[nodiscard]] bool compute_route(NicAddr src, NicAddr dst, RouteScratch& out) const override;
  /// Contiguous equal blocks of ports; the single switch is shared, which is
  /// fine — in PDES mode all link/switch state is coordinator-owned.
  [[nodiscard]] int domain_cut(int target, std::vector<int>& nic_domain) const override;

 private:
  std::size_t ports_;
};

}  // namespace qmb::net
