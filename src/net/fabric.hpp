// The Fabric: instantiates a Topology's links and switches, attaches NICs,
// and models packet traversal with wormhole cut-through timing.
//
// Timing of one unicast: the head flit leaves the source when the first
// link is free, pays each link's propagation latency plus each switch's
// routing delay, and the tail arrives one serialization time after the head
// (cut-through: serialization is paid once, not per hop). Every link on the
// route is occupied for one serialization time starting when the head
// reaches it, which is what creates contention between packets sharing a
// link.
//
// Hot-path discipline: routes come from a RouteCache (computed O(1) fills
// for structured topologies, memoized spans otherwise — no virtual Route
// allocation after first use either way), packet bodies are inline
// PacketPayloads, delivery callbacks capture the Packet by value inside the
// engine's inline callback storage, and broadcast's shared-link bookkeeping
// uses an epoch-stamped scratch vector. Steady-state transit performs zero
// heap allocations.
//
// Conservative PDES mode (enable_domains): the topology is cut into
// locality-preserving NIC domains and the engine sharded to match, with
// lookahead = 2 * link latency (every route crosses at least two links, so
// no send can affect any domain sooner than that). Within a window, send()
// does not touch wire state at all — it defers {emit time, causal stamp,
// packet} into the source domain's outbox. At each window boundary the
// single-threaded coordinator (the engine's window hook) merges all
// outboxes in (emit time, sched, lineage, domain, emit order) order — the
// causal stamps reproduce the sequential traversal order even for
// equal-instant sends (see the EventQueue tie-break contract, which makes
// this the determinism boundary) — then performs the
// full eager route traversal and schedules each delivery into its
// destination domain. Links and switches are therefore coordinator-owned:
// parallel window execution never races on them, and results are
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/route_cache.hpp"
#include "net/switch_node.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace qmb::net {

struct FabricParams {
  LinkParams link;     // uniform across the fabric
  SwitchParams sw;
};

class Fabric {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  Fabric(sim::Engine& engine, std::unique_ptr<Topology> topology,
         FabricParams params, sim::Tracer* tracer = nullptr);

  /// Attaches the next NIC; `deliver` is invoked (from an engine event) when
  /// a packet addressed to it arrives.
  NicAddr attach(DeliverFn deliver);

  /// Injects a packet; returns its fabric-assigned flow id (== Packet::id,
  /// monotonically increasing across injections). The source NIC must have
  /// been attached. With tracing on, injection records a flow-start event
  /// on the source NIC's track and delivery a flow-finish on the
  /// destination's, so the hop renders as an arrow in Perfetto.
  std::uint64_t send(Packet&& p);

  /// Hardware multicast: replicates a packet from `src` to every attached
  /// NIC in [first, last] (inclusive, possibly including src). Climbs to at
  /// least `min_top_level` (and at least the level spanning the range) and
  /// fans out downward; shared route links are reserved once for the whole
  /// replication — the copies ride one transmission until the switches fork
  /// them. Returns the latest delivery time.
  sim::SimTime broadcast(NicAddr src, NicAddr first, NicAddr last, std::uint32_t wire_bytes,
                         PacketPayload body, int min_top_level = 0);

  /// Pure timing query: unloaded latency of a `bytes` packet src->dst.
  [[nodiscard]] sim::SimDuration unloaded_latency(NicAddr src, NicAddr dst,
                                                  std::uint32_t bytes) const;

  /// Shards this fabric (and its engine) into roughly `target_domains`
  /// conservative-PDES domains along the topology's cut. Call after
  /// construction, before any NIC attaches. Returns the actual domain count;
  /// 1 means the fabric stays sequential (target <= 1, an uncuttable
  /// topology, or zero link latency leaving no safe lookahead). The cut
  /// depends only on the topology and the target — never on thread count —
  /// so any thread count replays the identical window sequence.
  int enable_domains(int target_domains);

  /// Domain count (1 when sequential).
  [[nodiscard]] int domains() const {
    return domains_.empty() ? 1 : static_cast<int>(domains_.size());
  }
  /// Domain owning a NIC (0 when sequential).
  [[nodiscard]] int domain_of(NicAddr a) const {
    return nic_domain_.empty() ? 0 : nic_domain_[static_cast<std::size_t>(a.index())];
  }

  [[nodiscard]] FaultInjector& faults() { return faults_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] std::size_t attached_nics() const { return nics_.size(); }

  /// Host-side cache statistics (hits/misses/entries); not simulated state.
  [[nodiscard]] const RouteCache& route_cache() const { return routes_; }

  // Aggregated across domains in PDES mode (each domain owns private
  // counter slots registered under its domain id as the metric node).
  [[nodiscard]] std::uint64_t packets_sent() const {
    std::uint64_t n = packets_sent_.value();
    for (const auto& d : domains_) n += d.packets_sent.value();
    return n;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const {
    std::uint64_t n = packets_delivered_.value();
    for (const auto& d : domains_) n += d.packets_delivered.value();
    return n;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    std::uint64_t n = bytes_sent_.value();
    for (const auto& d : domains_) n += d.bytes_sent.value();
    return n;
  }

  [[nodiscard]] Link& link(LinkId id) { return links_[id.index()]; }
  [[nodiscard]] SwitchNode& switch_node(SwitchId id) { return switches_[id.index()]; }

 private:
  /// A send deferred to the window boundary (PDES mode). `sched`/`lineage`
  /// are the emitting event's causal stamp (Engine::current_event_sched/
  /// _lineage): the instant that event was scheduled and the injection stamp
  /// of its chain's anchor delivery. The window merge orders equal-emit-time
  /// sends by them, reproducing the sequential issue order (see the
  /// EventQueue tie-break contract).
  struct Deferred {
    sim::SimTime emit;
    sim::SchedPath path;
    std::uint64_t lineage;
    Packet packet;
  };
  /// Per-domain PDES state. The counters shadow the fabric-wide ones under
  /// the domain id as metric node: the registry sums per name across nodes,
  /// so snapshots and totals stay identical to a sequential run.
  struct DomainState {
    obs::Counter packets_sent;
    obs::Counter packets_delivered;
    obs::Counter bytes_sent;
    obs::Histogram packet_bytes;
    // Packet ids only feed traces, never results, so per-domain streams in
    // disjoint high-bits ranges keep them unique without coordination.
    std::uint64_t next_packet_id = 0;
    std::vector<Deferred> outbox;
  };
  /// Reference into a domain outbox; the window merge sorts these by
  /// (emit, path, lineage, domain, idx) — causal ancestry first, then the
  /// anchor stamp for time-symmetric chains, falling back to (domain, emit
  /// order) only for pre-run-rooted ties (lineage 0), where ascending
  /// domain blocks reproduce the sequential rank order.
  struct MergeRef {
    sim::SimTime emit;
    sim::SchedPath path;
    std::uint64_t lineage;
    std::uint32_t domain;
    std::uint32_t idx;
  };

  /// Walks a route, reserving links; returns tail-arrival time at dst.
  sim::SimTime traverse(RouteView route, std::uint32_t bytes, sim::SimTime start);
  void schedule_delivery(Packet&& p, sim::SimTime at);
  /// Coordinator-side delivery injection into the destination's domain,
  /// carrying the sequential-order stamp (path = emit instant plus the
  /// sender's ancestry, lineage = this injection's stamp) the delivery's
  /// descendants will inherit.
  void schedule_delivery_on(int domain, Packet&& p, sim::SimTime at,
                            const sim::SchedPath& path, std::uint64_t lineage);
  /// Window hook: merges all domain outboxes in the causal-stamp order,
  /// traverses each route eagerly, and schedules the deliveries.
  void drain_window();

  sim::Engine& engine_;
  std::unique_ptr<Topology> topology_;
  FabricParams params_;
  sim::Tracer* tracer_;
  std::uint16_t trace_comp_ = 0;        // interned "fabric"
  std::uint16_t trace_ev_inject_ = 0;   // interned event names (hot path)
  std::uint16_t trace_ev_deliver_ = 0;
  std::uint16_t trace_ev_drop_ = 0;
  std::uint16_t trace_ev_bcast_ = 0;
  std::vector<Link> links_;
  std::vector<SwitchNode> switches_;
  std::vector<DeliverFn> nics_;
  FaultInjector faults_;
  // mutable: unloaded_latency is a const timing query but still memoizes.
  mutable RouteCache routes_;
  // Per-broadcast shared-link scratch: head time after each link, stamped
  // with the broadcast's epoch so clearing between calls is O(0).
  std::vector<std::pair<std::uint64_t, sim::SimTime>> bcast_head_scratch_;
  std::uint64_t bcast_epoch_ = 0;
  std::uint64_t next_packet_id_ = 1;
  // PDES state (empty when sequential).
  std::vector<DomainState> domains_;
  std::vector<int> nic_domain_;
  std::vector<MergeRef> merge_scratch_;
  // Coordinator's delivery-injection stamp (starts at 1; 0 marks chains
  // rooted in pre-run setup). Globally unique, assigned in merge order.
  std::uint64_t inject_stamp_ = 0;
  RouteScratch route_scratch_;  // coordinator/sequential-thread only
  // Registered in the engine's MetricRegistry; RunResult reads the totals.
  obs::Counter packets_sent_;
  obs::Counter packets_delivered_;
  obs::Counter bytes_sent_;
  obs::Counter packets_dropped_;
  obs::Histogram packet_bytes_;
  obs::Gauge nics_attached_;
};

}  // namespace qmb::net
