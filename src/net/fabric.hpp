// The Fabric: instantiates a Topology's links and switches, attaches NICs,
// and models packet traversal with wormhole cut-through timing.
//
// Timing of one unicast: the head flit leaves the source when the first
// link is free, pays each link's propagation latency plus each switch's
// routing delay, and the tail arrives one serialization time after the head
// (cut-through: serialization is paid once, not per hop). Every link on the
// route is occupied for one serialization time starting when the head
// reaches it, which is what creates contention between packets sharing a
// link.
//
// Hot-path discipline: routes come from a RouteCache (memoized spans, no
// virtual dispatch or vector allocation after first use), packet bodies are
// inline PacketPayloads, delivery callbacks capture the Packet by value
// inside the engine's inline callback storage, and broadcast's shared-link
// bookkeeping uses an epoch-stamped scratch vector. Steady-state transit
// performs zero heap allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/route_cache.hpp"
#include "net/switch_node.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace qmb::net {

struct FabricParams {
  LinkParams link;     // uniform across the fabric
  SwitchParams sw;
};

class Fabric {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  Fabric(sim::Engine& engine, std::unique_ptr<Topology> topology,
         FabricParams params, sim::Tracer* tracer = nullptr);

  /// Attaches the next NIC; `deliver` is invoked (from an engine event) when
  /// a packet addressed to it arrives.
  NicAddr attach(DeliverFn deliver);

  /// Injects a packet; returns its fabric-assigned flow id (== Packet::id,
  /// monotonically increasing across injections). The source NIC must have
  /// been attached. With tracing on, injection records a flow-start event
  /// on the source NIC's track and delivery a flow-finish on the
  /// destination's, so the hop renders as an arrow in Perfetto.
  std::uint64_t send(Packet&& p);

  /// Hardware multicast: replicates a packet from `src` to every attached
  /// NIC in [first, last] (inclusive, possibly including src). Climbs to at
  /// least `min_top_level` (and at least the level spanning the range) and
  /// fans out downward; shared route links are reserved once for the whole
  /// replication — the copies ride one transmission until the switches fork
  /// them. Returns the latest delivery time.
  sim::SimTime broadcast(NicAddr src, NicAddr first, NicAddr last, std::uint32_t wire_bytes,
                         PacketPayload body, int min_top_level = 0);

  /// Pure timing query: unloaded latency of a `bytes` packet src->dst.
  [[nodiscard]] sim::SimDuration unloaded_latency(NicAddr src, NicAddr dst,
                                                  std::uint32_t bytes) const;

  [[nodiscard]] FaultInjector& faults() { return faults_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] std::size_t attached_nics() const { return nics_.size(); }

  /// Host-side cache statistics (hits/misses/entries); not simulated state.
  [[nodiscard]] const RouteCache& route_cache() const { return routes_; }

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_.value(); }
  [[nodiscard]] std::uint64_t packets_delivered() const { return packets_delivered_.value(); }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_.value(); }

  [[nodiscard]] Link& link(LinkId id) { return links_[id.index()]; }
  [[nodiscard]] SwitchNode& switch_node(SwitchId id) { return switches_[id.index()]; }

 private:
  /// Walks a route, reserving links; returns tail-arrival time at dst.
  sim::SimTime traverse(RouteView route, std::uint32_t bytes, sim::SimTime start);
  void schedule_delivery(Packet&& p, sim::SimTime at);

  sim::Engine& engine_;
  std::unique_ptr<Topology> topology_;
  FabricParams params_;
  sim::Tracer* tracer_;
  std::uint16_t trace_comp_ = 0;        // interned "fabric"
  std::uint16_t trace_ev_inject_ = 0;   // interned event names (hot path)
  std::uint16_t trace_ev_deliver_ = 0;
  std::uint16_t trace_ev_drop_ = 0;
  std::uint16_t trace_ev_bcast_ = 0;
  std::vector<Link> links_;
  std::vector<SwitchNode> switches_;
  std::vector<DeliverFn> nics_;
  FaultInjector faults_;
  // mutable: unloaded_latency is a const timing query but still memoizes.
  mutable RouteCache routes_;
  // Per-broadcast shared-link scratch: head time after each link, stamped
  // with the broadcast's epoch so clearing between calls is O(0).
  std::vector<std::pair<std::uint64_t, sim::SimTime>> bcast_head_scratch_;
  std::uint64_t bcast_epoch_ = 0;
  std::uint64_t next_packet_id_ = 1;
  // Registered in the engine's MetricRegistry; RunResult reads the totals.
  obs::Counter packets_sent_;
  obs::Counter packets_delivered_;
  obs::Counter bytes_sent_;
  obs::Counter packets_dropped_;
  obs::Histogram packet_bytes_;
  obs::Gauge nics_attached_;
};

}  // namespace qmb::net
