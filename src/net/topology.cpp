#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qmb::net {

int Topology::domain_cut(int target, std::vector<int>& nic_domain) const {
  (void)target;
  nic_domain.assign(max_nics(), 0);
  return 1;
}

SingleCrossbar::SingleCrossbar(std::size_t ports) : ports_(ports) {
  if (ports < 2) throw std::invalid_argument("crossbar needs >= 2 ports");
}

Route SingleCrossbar::route(NicAddr src, NicAddr dst) const {
  assert(src.valid() && dst.valid());
  assert(src != dst && "no loopback routes");
  assert(src.index() < ports_ && dst.index() < ports_);
  Route r;
  // Link ids: [0, ports) are NIC->switch uplinks, [ports, 2*ports) downlinks.
  r.links = {LinkId(src.value()),
             LinkId(static_cast<std::int32_t>(ports_) + dst.value())};
  r.switches = {SwitchId(0)};
  return r;
}

bool SingleCrossbar::compute_route(NicAddr src, NicAddr dst, RouteScratch& out) const {
  assert(src.valid() && dst.valid());
  assert(src != dst && "no loopback routes");
  assert(src.index() < ports_ && dst.index() < ports_);
  out.links[0] = LinkId(src.value());
  out.links[1] = LinkId(static_cast<std::int32_t>(ports_) + dst.value());
  out.switches[0] = SwitchId(0);
  out.num_links = 2;
  out.num_switches = 1;
  return true;
}

int SingleCrossbar::domain_cut(int target, std::vector<int>& nic_domain) const {
  nic_domain.assign(ports_, 0);
  const std::size_t domains =
      std::clamp<std::size_t>(static_cast<std::size_t>(std::max(target, 1)), 1, ports_);
  const std::size_t block = (ports_ + domains - 1) / domains;
  int count = 0;
  for (std::size_t p = 0; p < ports_; ++p) {
    nic_domain[p] = static_cast<int>(p / block);
    count = std::max(count, nic_domain[p] + 1);
  }
  return count;
}

}  // namespace qmb::net
