#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace qmb::net {

SingleCrossbar::SingleCrossbar(std::size_t ports) : ports_(ports) {
  if (ports < 2) throw std::invalid_argument("crossbar needs >= 2 ports");
}

Route SingleCrossbar::route(NicAddr src, NicAddr dst) const {
  assert(src.valid() && dst.valid());
  assert(src != dst && "no loopback routes");
  assert(src.index() < ports_ && dst.index() < ports_);
  Route r;
  // Link ids: [0, ports) are NIC->switch uplinks, [ports, 2*ports) downlinks.
  r.links = {LinkId(src.value()),
             LinkId(static_cast<std::int32_t>(ports_) + dst.value())};
  r.switches = {SwitchId(0)};
  return r;
}

}  // namespace qmb::net
