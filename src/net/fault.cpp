#include "net/fault.hpp"

#include <cassert>
#include <stdexcept>

namespace qmb::net {

std::string_view to_string(FaultAction a) {
  switch (a) {
    case FaultAction::kDeliver: return "deliver";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDuplicate: return "duplicate";
    case FaultAction::kReorder: return "reorder";
    case FaultAction::kCorrupt: return "corrupt";
  }
  return "?";
}

std::optional<FaultAction> parse_fault_action(std::string_view s) {
  if (s == "drop") return FaultAction::kDrop;
  if (s == "duplicate" || s == "dup") return FaultAction::kDuplicate;
  if (s == "reorder") return FaultAction::kReorder;
  if (s == "corrupt") return FaultAction::kCorrupt;
  return std::nullopt;
}

std::string validate(const FaultSpec& s) {
  if (s.action == FaultAction::kDeliver) return "fault rule action must not be deliver";
  const bool windowed = s.until_ps > s.from_ps;
  const int modes = (s.nth > 0 ? 1 : 0) + (s.prob > 0.0 ? 1 : 0) + (windowed ? 1 : 0);
  if (modes == 0) {
    return "fault rule needs a firing mode: nth > 0, prob > 0, or a time window";
  }
  if (modes > 1) return "fault rule must use exactly one firing mode (nth/prob/window)";
  if (s.prob < 0.0 || s.prob >= 1.0) {
    return "fault rule prob must be in [0, 1) (got " + std::to_string(s.prob) + ")";
  }
  if (s.until_ps != 0 && !windowed) {
    return "fault rule window is empty (until <= from)";
  }
  if (s.action == FaultAction::kReorder && s.delay_ps <= 0) {
    return "reorder rule needs a positive delay";
  }
  if (s.action != FaultAction::kReorder && s.delay_ps != 0) {
    return "delay only applies to reorder rules";
  }
  if (s.src < -1) return "fault rule src must be a node index or -1 (any)";
  if (s.dst < -1) return "fault rule dst must be a node index or -1 (any)";
  return {};
}

FaultInjector& FaultRuleBuilder::drop() {
  spec_.action = FaultAction::kDrop;
  fi_.install(spec_);
  return fi_;
}

FaultInjector& FaultRuleBuilder::duplicate() {
  spec_.action = FaultAction::kDuplicate;
  fi_.install(spec_);
  return fi_;
}

FaultInjector& FaultRuleBuilder::corrupt() {
  spec_.action = FaultAction::kCorrupt;
  fi_.install(spec_);
  return fi_;
}

FaultInjector& FaultRuleBuilder::reorder(sim::SimDuration delay) {
  spec_.action = FaultAction::kReorder;
  spec_.delay_ps = delay.picos();
  fi_.install(spec_);
  return fi_;
}

void FaultInjector::install(const FaultSpec& spec) {
  if (const std::string err = validate(spec); !err.empty()) {
    throw std::invalid_argument(err);
  }
  Rule r;
  r.spec = spec;
  if (spec.prob > 0.0) r.rng = sim::Rng(spec.seed);
  rules_.push_back(std::move(r));
}

void FaultInjector::add_nth_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                                 std::uint64_t ordinal, FaultAction action) {
  FaultSpec s;
  s.src = src ? src->value() : -1;
  s.dst = dst ? dst->value() : -1;
  s.nth = ordinal;
  s.action = action;
  install(s);
}

void FaultInjector::add_random_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                                    double p, std::uint64_t seed, FaultAction action) {
  FaultSpec s;
  s.src = src ? src->value() : -1;
  s.dst = dst ? dst->value() : -1;
  s.prob = p;
  s.seed = seed;
  s.action = action;
  install(s);
}

void FaultInjector::add_blackout(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                                 sim::SimTime from, sim::SimTime until) {
  FaultSpec s;
  s.src = src ? src->value() : -1;
  s.dst = dst ? dst->value() : -1;
  s.from_ps = from.picos();
  s.until_ps = until.picos();
  install(s);
}

void FaultInjector::register_metrics(obs::MetricRegistry& reg) {
  dropped_metric_ = reg.counter("fault.dropped");
  duplicated_metric_ = reg.counter("fault.duplicated");
  reordered_metric_ = reg.counter("fault.reordered");
  corrupted_metric_ = reg.counter("fault.corrupted");
}

bool FaultInjector::matches(const Rule& r, const Packet& p) {
  if (r.spec.src >= 0 && r.spec.src != p.src.value()) return false;
  if (r.spec.dst >= 0 && r.spec.dst != p.dst.value()) return false;
  return true;
}

FaultAction FaultInjector::decide(const Packet& p) {
  for (Rule& r : rules_) {
    if (!matches(r, p)) continue;
    ++r.matches;
    bool fire = false;
    if (r.spec.until_ps > r.spec.from_ps) {
      assert(engine_ != nullptr && "windowed rule requires a clock");
      const std::int64_t now = engine_->now().picos();
      fire = now >= r.spec.from_ps && now < r.spec.until_ps;
    } else if (r.spec.nth > 0) {
      fire = r.matches == r.spec.nth;
    } else {
      fire = r.rng.next_bool(r.spec.prob);
    }
    if (!fire) continue;
    switch (r.spec.action) {
      case FaultAction::kDrop:
        ++dropped_;
        ++dropped_metric_;
        break;
      case FaultAction::kDuplicate:
        ++duplicated_;
        ++duplicated_metric_;
        break;
      case FaultAction::kReorder:
        ++reordered_;
        ++reordered_metric_;
        last_delay_ = sim::SimDuration(r.spec.delay_ps);
        break;
      case FaultAction::kCorrupt:
        ++corrupted_;
        ++corrupted_metric_;
        break;
      case FaultAction::kDeliver: break;  // unreachable; install() rejects it
    }
    return r.spec.action;
  }
  return FaultAction::kDeliver;
}

}  // namespace qmb::net
