#include "net/fault.hpp"

#include <cassert>

namespace qmb::net {

void FaultInjector::add_nth_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                                 std::uint64_t ordinal, FaultAction action) {
  Rule r;
  r.src = src;
  r.dst = dst;
  r.action = action;
  r.ordinal = ordinal;
  rules_.push_back(std::move(r));
}

void FaultInjector::add_random_rule(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                                    double p, std::uint64_t seed, FaultAction action) {
  Rule r;
  r.src = src;
  r.dst = dst;
  r.action = action;
  r.prob = p;
  r.rng = sim::Rng(seed);
  rules_.push_back(std::move(r));
}

void FaultInjector::add_blackout(std::optional<NicAddr> src, std::optional<NicAddr> dst,
                                 sim::SimTime from, sim::SimTime until) {
  Rule r;
  r.src = src;
  r.dst = dst;
  r.action = FaultAction::kDrop;
  r.windowed = true;
  r.from = from;
  r.until = until;
  rules_.push_back(std::move(r));
}

bool FaultInjector::matches(const Rule& r, const Packet& p) {
  if (r.src && *r.src != p.src) return false;
  if (r.dst && *r.dst != p.dst) return false;
  return true;
}

FaultAction FaultInjector::decide(const Packet& p) {
  for (Rule& r : rules_) {
    if (!matches(r, p)) continue;
    ++r.matches;
    bool fire = false;
    if (r.windowed) {
      assert(engine_ != nullptr && "blackout rule requires a clock");
      fire = engine_->now() >= r.from && engine_->now() < r.until;
    } else if (r.ordinal > 0) {
      fire = r.matches == r.ordinal;
    } else {
      fire = r.rng.next_bool(r.prob);
    }
    if (!fire) continue;
    if (r.action == FaultAction::kDrop) ++dropped_;
    if (r.action == FaultAction::kDuplicate) ++duplicated_;
    return r.action;
  }
  return FaultAction::kDeliver;
}

}  // namespace qmb::net
