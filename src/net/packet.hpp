// Wire packets exchanged between NICs through a Fabric.
//
// The fabric models only the header fields it needs for timing (size, src,
// dst); the protocol payload is an opaque PacketPayload the receiving NIC
// narrows by type tag. Payloads are small-buffer optimized: the barrier,
// ACK/NACK, and RDMA bodies are tiny PODs stored inline in the packet, so
// injection, retransmit-record capture, and fault duplication never touch
// the heap on the steady-state path. Oversized payloads spill to a single
// heap allocation, preserving value semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "net/types.hpp"

namespace qmb::net {

/// Identity of a payload type: the address of a per-type anchor, unique
/// across translation units (inline variables are merged by the linker).
/// Tags never enter simulated state, so address non-determinism is fine.
using PayloadTag = const void*;

namespace detail {
template <class T>
inline constexpr std::byte payload_tag_anchor{};
}  // namespace detail

template <class T>
[[nodiscard]] constexpr PayloadTag payload_tag() {
  return &detail::payload_tag_anchor<T>;
}

/// Move-only, small-buffer-optimized packet body (same SBO pattern as
/// sim::Callback). Any copy-constructible type can ride in a payload;
/// narrowing back is a tag compare, not a dynamic_cast. clone() is the
/// explicit copy used by retransmission records and the fault injector's
/// duplicate action — for inline payloads it is a plain copy construction.
class PacketPayload {
 public:
  /// Inline budget. 40 bytes fits every protocol body in the tree (the
  /// largest, myri::DataPacket, is exactly 40 after field ordering); a
  /// bigger body spills to one heap allocation and still clones correctly.
  static constexpr std::size_t kInlineCapacity = 40;
  /// Inline alignment budget. Kept at 8 (not max_align_t) so the whole
  /// Packet stays 72 bytes and a [this, Packet] delivery capture fits the
  /// engine callback's inline storage; over-aligned bodies spill to heap.
  static constexpr std::size_t kInlineAlign = 8;

  PacketPayload() noexcept = default;

  template <class T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, PacketPayload> &&
             std::is_copy_constructible_v<std::remove_cvref_t<T>>)
  PacketPayload(T&& v) {  // NOLINT(google-explicit-constructor)
    using Body = std::remove_cvref_t<T>;
    if constexpr (fits_inline<Body>) {
      ::new (static_cast<void*>(buf_)) Body(std::forward<T>(v));
      ops_ = &kInlineOps<Body>;
    } else {
      ::new (static_cast<void*>(buf_)) Body*(new Body(std::forward<T>(v)));
      ops_ = &kHeapOps<Body>;
    }
  }

  PacketPayload(PacketPayload&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  PacketPayload& operator=(PacketPayload&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  PacketPayload(const PacketPayload&) = delete;
  PacketPayload& operator=(const PacketPayload&) = delete;

  ~PacketPayload() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }
  [[nodiscard]] bool empty() const noexcept { return ops_ == nullptr; }

  /// Tag of the stored body type, or nullptr when empty.
  [[nodiscard]] PayloadTag tag() const noexcept {
    return ops_ != nullptr ? ops_->tag : nullptr;
  }

  /// Narrowing accessor: the body as T*, or nullptr on tag mismatch.
  template <class T>
  [[nodiscard]] const T* as() const noexcept {
    if (ops_ == nullptr || ops_->tag != payload_tag<T>()) return nullptr;
    return static_cast<const T*>(ops_->get(buf_));
  }

  /// Value copy of the payload (empty clones to empty). Inline payloads
  /// copy-construct in place; only spilled payloads allocate.
  [[nodiscard]] PacketPayload clone() const {
    PacketPayload out;
    if (ops_ != nullptr) ops_->clone(buf_, out);
    return out;
  }

 private:
  struct Ops {
    PayloadTag tag;
    const void* (*get)(const std::byte* buf) noexcept;
    void (*relocate)(std::byte* from, std::byte* to) noexcept;
    void (*destroy)(std::byte* buf) noexcept;
    void (*clone)(const std::byte* buf, PacketPayload& dst);
  };

  // Inline storage requires nothrow relocation: payloads move through the
  // event queue inside delivery callbacks under noexcept move assignment.
  template <class Body>
  static constexpr bool fits_inline = sizeof(Body) <= kInlineCapacity &&
                                      alignof(Body) <= kInlineAlign &&
                                      std::is_nothrow_move_constructible_v<Body>;

  template <class Body>
  static Body* at(std::byte* p) noexcept {
    return std::launder(reinterpret_cast<Body*>(p));
  }
  template <class Body>
  static const Body* at(const std::byte* p) noexcept {
    return std::launder(reinterpret_cast<const Body*>(p));
  }

  // Named helpers rather than lambdas: the clone ops must write the private
  // buf_/ops_ of the destination payload.
  template <class Body>
  static void clone_inline(const std::byte* buf, PacketPayload& dst) {
    ::new (static_cast<void*>(dst.buf_)) Body(*at<Body>(buf));
    dst.ops_ = &kInlineOps<Body>;
  }
  template <class Body>
  static void clone_heap(const std::byte* buf, PacketPayload& dst) {
    ::new (static_cast<void*>(dst.buf_)) Body*(new Body(**at<Body*>(buf)));
    dst.ops_ = &kHeapOps<Body>;
  }

  template <class Body>
  static constexpr Ops kInlineOps{
      payload_tag<Body>(),
      [](const std::byte* buf) noexcept -> const void* { return at<Body>(buf); },
      [](std::byte* from, std::byte* to) noexcept {
        Body* b = at<Body>(from);
        ::new (static_cast<void*>(to)) Body(std::move(*b));
        b->~Body();
      },
      [](std::byte* buf) noexcept { at<Body>(buf)->~Body(); },
      &clone_inline<Body>,
  };

  template <class Body>
  static constexpr Ops kHeapOps{
      payload_tag<Body>(),
      [](const std::byte* buf) noexcept -> const void* { return *at<Body*>(buf); },
      [](std::byte* from, std::byte* to) noexcept {
        ::new (static_cast<void*>(to)) Body*(*at<Body*>(from));
      },
      [](std::byte* buf) noexcept { delete *at<Body*>(buf); },
      &clone_heap<Body>,
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};
static_assert(sizeof(PacketPayload) == 48);

struct Packet {
  NicAddr src;
  NicAddr dst;
  std::uint32_t wire_bytes = 0;  // total on-the-wire size including headers
  /// Set by the fault injector's corrupt action: the packet traverses the
  /// wire normally but fails the CRC check at the receiving NIC, which
  /// discards it (and counts it) without ever handing it to the protocol.
  /// Occupies padding, so the Packet stays 72 bytes.
  bool corrupted = false;
  /// Fabric-assigned flow id: monotonically increasing, unique per
  /// injection (broadcast replicas each get their own). Trace events use it
  /// to pair a packet's injection with its delivery (Chrome `ph:"s"/"f"`
  /// flow arrows) and to correlate protocol-level trigger/recv events with
  /// the wire hop that carried them. A fault-injected duplicate keeps the
  /// original's id — both arrivals belong to one logical flow.
  std::uint64_t id = 0;
  PacketPayload body;

  Packet() = default;
  Packet(NicAddr s, NicAddr d, std::uint32_t bytes, PacketPayload b)
      : src(s), dst(d), wire_bytes(bytes), body(std::move(b)) {}

  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  [[nodiscard]] Packet duplicate() const {
    Packet p(src, dst, wire_bytes, body.clone());
    p.id = id;
    p.corrupted = corrupted;
    return p;
  }
};
static_assert(sizeof(Packet) == 72, "delivery captures must stay inline");

/// Narrowing helper: returns the body as T* or nullptr (tag compare).
template <class T>
[[nodiscard]] const T* body_as(const Packet& p) {
  return p.body.as<T>();
}

}  // namespace qmb::net
