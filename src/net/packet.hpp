// Wire packets exchanged between NICs through a Fabric.
//
// The fabric models only the header fields it needs for timing (size, src,
// dst); the protocol payload is a polymorphic body the receiving NIC
// downcasts by its own packet-type tag. Bodies are cloneable so the fault
// injector can duplicate packets.
#pragma once

#include <cstdint>
#include <memory>

#include "net/types.hpp"

namespace qmb::net {

class PacketBody {
 public:
  virtual ~PacketBody() = default;
  [[nodiscard]] virtual std::unique_ptr<PacketBody> clone() const = 0;

 protected:
  PacketBody() = default;
  PacketBody(const PacketBody&) = default;
  PacketBody& operator=(const PacketBody&) = default;
};

/// CRTP helper implementing clone() for concrete bodies.
template <class Derived>
class PacketBodyBase : public PacketBody {
 public:
  [[nodiscard]] std::unique_ptr<PacketBody> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

struct Packet {
  NicAddr src;
  NicAddr dst;
  std::uint32_t wire_bytes = 0;  // total on-the-wire size including headers
  std::uint64_t id = 0;          // fabric-assigned, unique per injection
  std::unique_ptr<PacketBody> body;

  Packet() = default;
  Packet(NicAddr s, NicAddr d, std::uint32_t bytes, std::unique_ptr<PacketBody> b)
      : src(s), dst(d), wire_bytes(bytes), body(std::move(b)) {}

  [[nodiscard]] Packet duplicate() const {
    Packet p(src, dst, wire_bytes, body ? body->clone() : nullptr);
    p.id = id;
    return p;
  }
};

/// Narrowing helper: returns the body as T* or nullptr.
template <class T>
[[nodiscard]] const T* body_as(const Packet& p) {
  return dynamic_cast<const T*>(p.body.get());
}

}  // namespace qmb::net
