// Elan3 NIC model: an RDMA engine plus an event unit sharing the card's
// microcode processor (one serialized Resource), attached to the quaternary
// fat-tree fabric.
//
// The chained-RDMA barrier executes here: a group's chained descriptor list
// is armed from user level once; arriving remote events advance the chain
// without any host involvement until the final local event (paper Sec. 7).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/schedule.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "quadrics/config.hpp"
#include "quadrics/packets.hpp"
#include "sim/resource.hpp"
#include "sim/trace.hpp"

namespace qmb::elan {

struct ElanGroupDesc {
  std::uint32_t group_id = 0;
  int my_rank = -1;
  coll::Placement rank_to_node;  // shared across the group's NICs
  coll::RankSchedule schedule;
  coll::OpKind op_kind = coll::OpKind::kBarrier;
  coll::ReduceOp reduce_op = coll::ReduceOp::kSum;
  std::uint32_t payload_bytes = 8;  // bytes per contribution word; RDMA puts
                                    // carry any size directly to host memory
};

/// Handles into the engine's MetricRegistry, registered per NIC under
/// "elan.*" names; RunResult reads the cross-node totals off the registry.
struct ElanStats {
  obs::Counter rdma_issued;
  obs::Counter events_fired;
  obs::Counter host_notifies;
  obs::Counter barrier_ops_completed;
  obs::Counter early_buffered;
  obs::Counter crc_dropped;  // inbound CRC discards (fault-injected corruption)
};

class Nic {
 public:
  Nic(sim::Engine& engine, net::Fabric& fabric, const Elan3Config& config,
      int node_index, sim::Tracer* tracer);

  // --- raw Elan3 primitives ---

  /// Issues an RDMA put of `bytes` towards `dst_node`, firing the remote
  /// event described by `body`. Called at NIC time (post-doorbell).
  void rdma_put(int dst_node, std::uint32_t bytes, ElanRdma body);

  /// Handler for host-level tagged puts landing on this NIC; invoked at NIC
  /// time after the event word reaches host memory (host poll cost is the
  /// caller's).
  using HostMsgHandler = std::function<void(const ElanRdma&)>;
  void set_host_msg_handler(HostMsgHandler h) { host_msg__handler_ = std::move(h); }

  // --- chained-RDMA barrier unit ---

  /// Arms a barrier group: builds the chained descriptor list for this
  /// rank's schedule.
  void create_barrier_group(ElanGroupDesc desc);

  /// Host triggered the first descriptor of the chain (at NIC time).
  /// `done` runs at NIC time when the final local event's word lands in
  /// host memory.
  void barrier_enter(std::uint32_t group, sim::EventCallback done);

  /// Value-carrying entry for bcast/allreduce/allgather/alltoall groups:
  /// the payload rides the RDMA put exactly as the barrier's notification
  /// does (paper Sec. 7 — a put may carry data as well as fire an event).
  void collective_enter(std::uint32_t group, std::int64_t value,
                        std::function<void(std::int64_t)> done);

  // --- hardware-barrier hooks (used by HwBarrierController) ---

  /// Sets/clears the test-and-set flag the hardware probe examines.
  void set_tset_flag(std::uint64_t round) { tset_round_ = round; }
  [[nodiscard]] bool tset_flag_at_least(std::uint64_t round) const {
    return tset_round_ >= round;
  }

  using ProbeHandler = std::function<void(const TsetProbe&)>;
  using GoHandler = std::function<void(const TsetGo&)>;
  void set_probe_handler(ProbeHandler h) { probe_handler_ = std::move(h); }
  void set_go_handler(GoHandler h) { go_handler_ = std::move(h); }

  [[nodiscard]] net::NicAddr addr() const { return addr_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] const Elan3Config& config() const { return *config_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] sim::Resource& unit() { return unit_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const ElanStats& stats() const { return stats_; }

  /// Records a protocol trace event; `flow` (when non-zero) correlates it
  /// with the fabric packet carrying this RDMA/event-chain step.
  void trace(std::string_view event, std::int64_t a = 0, std::int64_t b = 0,
             std::int64_t flow = 0);

 private:
  struct EarlyArrival {
    int peer_rank;
    std::uint32_t tag;
    std::int64_t value;
  };
  struct Op {
    std::uint32_t seq = 0;
    bool in_use = false;
    bool active = false;
    bool complete = false;
    std::int64_t acc = 0;
    std::unique_ptr<coll::ScheduleExecutor> exec;
    std::vector<EarlyArrival> early;
    std::unordered_map<std::uint64_t, std::int64_t> wait_values;
    std::function<void(std::int64_t)> done;
  };
  struct Group {
    ElanGroupDesc desc;
    std::uint32_t next_host_seq = 0;
    Op slots[2];
  };

  [[nodiscard]] static std::uint64_t edge_key(int peer, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) | tag;
  }
  void on_packet(net::Packet&& p);
  void handle_barrier_event(const ElanRdma& r);
  Op& touch_slot(Group& g, std::uint32_t seq);
  void activate(Group& g, Op& op);
  void barrier_send(Group& g, std::uint32_t seq, const coll::Edge& e, std::int64_t value);
  void finish_barrier(Group& g, Op& op);

  sim::Engine* engine_;
  net::Fabric* fabric_;
  const Elan3Config* config_;
  int node_;
  sim::Tracer* tracer_;
  std::uint16_t trace_comp_ = 0;  // interned "elan"
  sim::Resource unit_;
  net::NicAddr addr_;
  ElanStats stats_;
  HostMsgHandler host_msg__handler_;
  ProbeHandler probe_handler_;
  GoHandler go_handler_;
  std::uint64_t tset_round_ = 0;
  std::unordered_map<std::uint32_t, Group> groups_;
};

}  // namespace qmb::elan
