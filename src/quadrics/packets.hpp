// Elan wire transactions. Plain structs carried inline in
// net::PacketPayload (tag dispatch, no vtables).
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace qmb::elan {

/// One RDMA put. A zero-byte put that only fires a remote event is the
/// building block of the chained-RDMA barrier (paper Sec. 7).
struct ElanRdma {
  enum class EventClass : std::uint8_t {
    kBarrier,   // chained-barrier remote event
    kHostMsg,   // host-level tagged put (elan_put)
  };
  EventClass ev_class = EventClass::kHostMsg;
  std::uint32_t group = 0;
  std::uint32_t seq = 0;
  std::uint32_t tag = 0;
  std::uint32_t src_rank = 0;
  std::uint32_t payload_bytes = 0;
  std::int64_t value = 0;
};

/// Hardware-barrier probe: "is your barrier flag for `round` set?". Sent as
/// a hardware broadcast; replies combine in the switches (modeled
/// analytically by HwBarrierController).
struct TsetProbe {
  std::uint64_t round = 0;
};

/// Hardware-barrier release, broadcast after a successful probe.
struct TsetGo {
  std::uint64_t round = 0;
};

}  // namespace qmb::elan
