#include "quadrics/elanlib.hpp"

#include <stdexcept>
#include <utility>

namespace qmb::elan {

ElanNode::ElanNode(sim::Engine& engine, net::Fabric& fabric, const Elan3Config& config,
                   int index, sim::Tracer* tracer)
    : index_(index),
      cfg_(config),
      host_cpu_(engine),
      nic_(engine, fabric, config, index, tracer) {}

void ElanNode::put(int dst_node, std::uint32_t bytes, std::uint32_t tag,
                   std::int64_t value) {
  host_cpu_.exec(cfg_.host_event_setup + cfg_.host_doorbell,
                 [this, dst_node, bytes, tag, value] {
    ElanRdma body;
    body.ev_class = ElanRdma::EventClass::kHostMsg;
    body.tag = tag;
    body.src_rank = static_cast<std::uint32_t>(index_);
    body.payload_bytes = bytes;
    body.value = value;
    // Host-side doorbell; the flow id is assigned (and traced) when the
    // RDMA unit injects the packet in rdma_put.
    nic_.trace("elan_put", dst_node, tag);
    nic_.rdma_put(dst_node, bytes, body);
  });
}

void ElanNode::set_receive_handler(ReceiveHandler fn) {
  app_handler_ = std::move(fn);
  install_dispatcher();
}

int ElanNode::add_receive_handler(ReceiveHandler fn) {
  const int id = next_handler_id_++;
  extra_handlers_.emplace_back(id, std::move(fn));
  install_dispatcher();
  return id;
}

void ElanNode::remove_receive_handler(int id) {
  for (auto it = extra_handlers_.begin(); it != extra_handlers_.end(); ++it) {
    if (it->first == id) {
      extra_handlers_.erase(it);
      return;
    }
  }
}

void ElanNode::install_dispatcher() {
  if (dispatcher_installed_) return;
  dispatcher_installed_ = true;
  // One host_detect poll per delivered message, however many handlers are
  // registered — the host wakes once and fans the message out.
  nic_.set_host_msg_handler([this](const ElanRdma& r) {
    host_cpu_.exec(cfg_.host_detect, [this, src = static_cast<int>(r.src_rank),
                                      tag = r.tag, value = r.value] {
      for (std::size_t i = 0; i < extra_handlers_.size(); ++i) {
        extra_handlers_[i].second(src, tag, value);
      }
      if (app_handler_) app_handler_(src, tag, value);
    });
  });
}

void ElanNode::barrier_enter(std::uint32_t group, sim::EventCallback done) {
  host_cpu_.exec(cfg_.host_doorbell, [this, group, done = std::move(done)]() mutable {
    nic_.barrier_enter(group, [this, done = std::move(done)]() mutable {
      host_cpu_.exec(cfg_.host_detect, std::move(done));
    });
  });
}

void ElanNode::collective_enter(std::uint32_t group, std::int64_t value,
                                std::function<void(std::int64_t)> done) {
  host_cpu_.exec(cfg_.host_doorbell, [this, group, value, done = std::move(done)]() mutable {
    nic_.collective_enter(group, value,
                          [this, done = std::move(done)](std::int64_t result) mutable {
                            host_cpu_.exec(cfg_.host_detect,
                                           [done = std::move(done), result]() mutable {
                                             done(result);
                                           });
                          });
  });
}

void ElanNode::hgsync_enter(sim::EventCallback done) {
  if (hw_ == nullptr) {
    throw std::logic_error("hgsync_enter without an attached HwBarrierController");
  }
  host_cpu_.exec(cfg_.host_doorbell, [this, done = std::move(done)]() mutable {
    nic_.unit().exec(cfg_.command_process, [this, done = std::move(done)]() mutable {
      hw_->enter(index_, [this, done = std::move(done)]() mutable {
        host_cpu_.exec(cfg_.host_detect, std::move(done));
      });
    });
  });
}

}  // namespace qmb::elan
