#include "quadrics/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/fat_tree.hpp"

namespace qmb::elan {

std::unique_ptr<net::Fabric> make_elan_fabric(sim::Engine& engine,
                                              const Elan3Config& config,
                                              std::size_t nodes, sim::Tracer* tracer) {
  // The paper's switch is an Elite-16: a dimension-TWO quaternary fat tree
  // even for small node counts, so build at least two levels. Hardware
  // broadcasts always run through the top, making elan_hgsync's latency
  // independent of how many slots are populated.
  auto fitted = net::FatTree::fitting(config.arity, nodes);
  const std::size_t levels = std::max<std::size_t>(2, fitted.levels());
  auto tree = std::make_unique<net::FatTree>(config.arity, levels, nodes);
  net::FabricParams params{config.link, config.sw};
  return std::make_unique<net::Fabric>(engine, std::move(tree), params, tracer);
}

HwBarrierController::HwBarrierController(sim::Engine& engine, net::Fabric& fabric,
                                         std::vector<Nic*> nics, const Elan3Config& config)
    : engine_(engine), fabric_(fabric), nics_(std::move(nics)), cfg_(config) {
  probes_sent_ = engine_.metrics().counter("hw.probes_sent");
  failed_probes_ = engine_.metrics().counter("hw.failed_probes");
  const auto n = nics_.size();
  assert(n >= 2);
  entered_.resize(n, 0);
  pending_done_.resize(n);
  // Hardware broadcast and combining always run through the fat tree's
  // root, so the transaction cost is independent of how many of the slots
  // participate (Fig. 7: elan_hgsync's flat latency).
  combine_levels_ = std::max(1, fabric_.topology().top_level());
  for (std::size_t i = 0; i < n; ++i) {
    const int node = static_cast<int>(i);
    nics_[i]->set_probe_handler([this, node](const TsetProbe& probe) {
      const bool ok = nics_[static_cast<std::size_t>(node)]->tset_flag_at_least(probe.round);
      on_probe_reply(node, probe.round, ok, engine_.now());
    });
    nics_[i]->set_go_handler([this, node](const TsetGo& go) { on_go(node, go); });
  }
}

void HwBarrierController::enter(int node, sim::EventCallback done) {
  auto& count = entered_[static_cast<std::size_t>(node)];
  ++count;
  nics_[static_cast<std::size_t>(node)]->set_tset_flag(count);
  pending_done_[static_cast<std::size_t>(node)] = std::move(done);
  // The root drives the probe cycle; non-root entries just set their flag.
  if (node == 0 && !probe_inflight_) launch_probe();
}

void HwBarrierController::launch_probe() {
  probe_inflight_ = true;
  probe_round_ = round_;
  replies_expected_ = nics_.size();
  replies_seen_ = 0;
  all_ok_ = true;
  last_reply_at_ = engine_.now();
  ++probes_sent_;
  fabric_.broadcast(nics_[0]->addr(), net::NicAddr(0),
                    net::NicAddr(static_cast<std::int32_t>(nics_.size() - 1)),
                    cfg_.header_bytes, TsetProbe{round_}, combine_levels_);
}

void HwBarrierController::on_probe_reply(int /*node*/, std::uint64_t round, bool ok,
                                         sim::SimTime at) {
  if (!probe_inflight_ || round != probe_round_) return;
  ++replies_seen_;
  all_ok_ = all_ok_ && ok;
  last_reply_at_ = std::max(last_reply_at_, at);
  if (replies_seen_ == replies_expected_) {
    // Reply tokens combine in the switch ASICs on the way back up: one
    // combining stage per fat-tree level between the farthest leaf and the
    // root, paid once (hardware combining, not per-node serialization).
    const sim::SimDuration combine =
        static_cast<std::int64_t>(combine_levels_) *
        (cfg_.link.latency + cfg_.combine_per_level);
    engine_.schedule(combine, [this] { finish_probe(); });
  }
}

void HwBarrierController::finish_probe() {
  probe_inflight_ = false;
  if (!all_ok_) {
    // Some process had not reached the barrier: back off and re-probe.
    ++failed_probes_;
    engine_.schedule(cfg_.hgsync_retry, [this] {
      if (!probe_inflight_) launch_probe();
    });
    return;
  }
  const TsetGo body{round_};
  ++round_;
  fabric_.broadcast(nics_[0]->addr(), net::NicAddr(0),
                    net::NicAddr(static_cast<std::int32_t>(nics_.size() - 1)),
                    cfg_.header_bytes, body, combine_levels_);
}

void HwBarrierController::on_go(int node, const TsetGo& go) {
  (void)go;
  auto& done = pending_done_[static_cast<std::size_t>(node)];
  if (!done) return;
  Nic& nic = *nics_[static_cast<std::size_t>(node)];
  nic.unit().exec(cfg_.host_notify_dma, std::exchange(done, nullptr));
}

}  // namespace qmb::elan
