// Quadrics fabric helpers: quaternary fat-tree construction and the
// hardware barrier (network test-and-set with switch combining) used by
// elan_hgsync().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "quadrics/config.hpp"
#include "quadrics/nic.hpp"

namespace qmb::elan {

/// Builds the QsNet fabric: a quaternary fat tree just deep enough for
/// `nodes`, with Elite link/switch parameters from `config`.
[[nodiscard]] std::unique_ptr<net::Fabric> make_elan_fabric(sim::Engine& engine,
                                                            const Elan3Config& config,
                                                            std::size_t nodes,
                                                            sim::Tracer* tracer = nullptr);

/// The hardware barrier: the root NIC broadcasts a test-and-set probe; every
/// NIC's reply token combines in the Elite switches on the way up; when all
/// flags were set, the root broadcasts the release. An unsuccessful probe
/// (some process had not reached the barrier) retries after a backoff — the
/// behaviour that makes elan_hgsync() fast only for well-synchronized
/// processes (paper Sec. 4.1 and 8.2).
///
/// Probes and releases travel as real broadcast packets; only the reply
/// combining is computed analytically (in hardware it happens inside the
/// switch ASICs and never occupies host-visible links).
class HwBarrierController {
 public:
  HwBarrierController(sim::Engine& engine, net::Fabric& fabric,
                      std::vector<Nic*> nics, const Elan3Config& config);

  /// Node's host entered the hardware barrier (call at NIC time, after the
  /// doorbell; the flag must already be set via Nic::set_tset_flag).
  /// `done` runs at NIC time when the release event lands on that node.
  void enter(int node, sim::EventCallback done);

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_.value(); }
  [[nodiscard]] std::uint64_t failed_probes() const { return failed_probes_.value(); }
  [[nodiscard]] std::uint64_t rounds_completed() const { return round_ - 1; }

 private:
  void launch_probe();
  void on_probe_reply(int node, std::uint64_t round, bool ok, sim::SimTime at);
  void finish_probe();
  void on_go(int node, const TsetGo& go);

  sim::Engine& engine_;
  net::Fabric& fabric_;
  std::vector<Nic*> nics_;
  const Elan3Config& cfg_;

  std::uint64_t round_ = 1;  // barrier round currently being performed
  std::vector<std::uint64_t> entered_;           // per node: rounds entered so far
  std::vector<sim::EventCallback> pending_done_; // per node: completion for current round
  // probe in flight
  bool probe_inflight_ = false;
  std::uint64_t probe_round_ = 0;
  std::size_t replies_expected_ = 0;
  std::size_t replies_seen_ = 0;
  bool all_ok_ = true;
  sim::SimTime last_reply_at_;
  int combine_levels_ = 1;

  // Registered as "hw.probes_sent" / "hw.failed_probes" in the engine's
  // MetricRegistry.
  obs::Counter probes_sent_;
  obs::Counter failed_probes_;
};

}  // namespace qmb::elan
