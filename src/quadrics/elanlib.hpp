// Elanlib-style host API (paper Sec. 4.1): tagged puts, the chained-RDMA
// NIC barrier doorbell, and elan_hgsync()'s hardware-barrier entry. Host
// costs (descriptor setup, doorbell, event-word polling) run on the node's
// host CPU resource.
//
// The three Quadrics barrier flavours of Fig. 7 are built on these
// primitives in core/quadrics_barrier.cpp:
//   * elan_gsync  — host-level gather-broadcast tree over put()
//   * elan_hgsync — hardware broadcast + network test-and-set
//   * NIC barrier — chained RDMA descriptors (barrier_enter)
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "quadrics/fabric.hpp"
#include "quadrics/nic.hpp"
#include "sim/resource.hpp"

namespace qmb::elan {

/// One simulated Quadrics node: host CPU + Elan3 NIC + user-level port.
class ElanNode {
 public:
  ElanNode(sim::Engine& engine, net::Fabric& fabric, const Elan3Config& config,
           int index, sim::Tracer* tracer);
  ElanNode(const ElanNode&) = delete;
  ElanNode& operator=(const ElanNode&) = delete;

  /// Tagged host-level message (elan_put + remote event): the remote host's
  /// receive handler runs after its poll loop sees the event word.
  /// `value` models the first payload word.
  void put(int dst_node, std::uint32_t bytes, std::uint32_t tag, std::int64_t value = 0);

  using ReceiveHandler =
      std::function<void(int src_node, std::uint32_t tag, std::int64_t value)>;

  /// Installs (or replaces) the application's receive handler. Every
  /// delivered host message pays one host_detect poll, then runs the added
  /// handlers followed by this one.
  void set_receive_handler(ReceiveHandler fn);

  /// Adds a handler that sees every host message alongside the app handler
  /// (host collectives over overlapping groups each add one and filter by
  /// tag). Returns an id for remove_receive_handler. The per-message host
  /// cost is paid once per node, not per handler.
  int add_receive_handler(ReceiveHandler fn);
  void remove_receive_handler(int id);

  /// Arms a chained-RDMA barrier group on this node's NIC (setup time, off
  /// the measured path — the paper arms descriptors from user level once).
  void create_barrier_group(ElanGroupDesc desc) {
    nic_.create_barrier_group(std::move(desc));
  }

  /// Chained-RDMA NIC barrier: doorbell in, final local event out. `done`
  /// runs on the host after it polls the completion word.
  void barrier_enter(std::uint32_t group, sim::EventCallback done);

  /// Value-carrying NIC collective (bcast/allreduce/allgather/alltoall
  /// groups): operand in with the doorbell, result out with the event word.
  void collective_enter(std::uint32_t group, std::int64_t value,
                        std::function<void(std::int64_t)> done);

  /// elan_hgsync() entry: sets the NIC test-and-set flag and waits for the
  /// hardware release. Requires attach_hw_barrier().
  void hgsync_enter(sim::EventCallback done);

  void attach_hw_barrier(HwBarrierController* hw) { hw_ = hw; }

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] sim::Resource& host_cpu() { return host_cpu_; }
  [[nodiscard]] Nic& nic() { return nic_; }
  [[nodiscard]] const Elan3Config& config() const { return cfg_; }

 private:
  void install_dispatcher();

  int index_;
  const Elan3Config& cfg_;
  sim::Resource host_cpu_;
  Nic nic_;
  HwBarrierController* hw_ = nullptr;
  ReceiveHandler app_handler_;
  std::vector<std::pair<int, ReceiveHandler>> extra_handlers_;
  int next_handler_id_ = 0;
  bool dispatcher_installed_ = false;
};

}  // namespace qmb::elan
