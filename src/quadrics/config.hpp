// Cost-model preset for the paper's Quadrics testbed (Sec. 8): 8 nodes of
// the quad-P3-700 cluster on a QsNet/Elan3 network — Elan3 QM-400 cards and
// a dimension-two quaternary fat tree of Elite-16 switches.
//
// The Elan3 exposes an RDMA engine and an event unit; NIC-side costs below
// are durations of those units' micro-operations. There is no software
// reliability layer: QsNet delivers reliably in hardware, which is why the
// chained-RDMA barrier needs no ACK/NACK machinery at all (paper Sec. 7).
#pragma once

#include "net/link.hpp"
#include "net/switch_node.hpp"
#include "sim/time.hpp"

namespace qmb::elan {

struct Elan3Config {
  // --- host side (700 MHz Pentium-III) ---
  sim::SimDuration host_doorbell = sim::nanoseconds(300);     // store to command port
  sim::SimDuration host_detect = sim::nanoseconds(450);       // poll event word
  sim::SimDuration host_event_setup = sim::nanoseconds(400);  // build descriptor at user level

  // --- Elan3 NIC units ---
  sim::SimDuration command_process = sim::nanoseconds(250);  // command port -> unit dispatch
  sim::SimDuration rdma_issue = sim::nanoseconds(350);       // descriptor fetch + DMA start
  sim::SimDuration event_fire = sim::nanoseconds(250);       // event unit processes set-event
  sim::SimDuration host_notify_dma = sim::nanoseconds(350);  // event word write to host memory

  // --- hardware broadcast / network test-and-set (elan_hgsync) ---
  sim::SimDuration tset_probe = sim::nanoseconds(300);        // NIC checks barrier flag
  sim::SimDuration combine_per_level = sim::nanoseconds(150); // ACK-token combining per switch level
  sim::SimDuration hgsync_retry = sim::microseconds(2);       // re-probe backoff when not all ready

  // --- fabric ---
  std::size_t arity = 4;  // quaternary fat tree
  net::LinkParams link{sim::nanoseconds(150), 3.4e8};  // ~340 MB/s, ~35 ns/hop wire + pipeline
  net::SwitchParams sw{sim::nanoseconds(100)};         // Elite fall-through (~35 ns) + routing

  std::uint32_t header_bytes = 24;  // RDMA transaction header
};

/// The paper's 8-node Elan3 testbed.
[[nodiscard]] inline Elan3Config elan3_cluster() { return Elan3Config{}; }

}  // namespace qmb::elan
