#include "quadrics/nic.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/coll_tag.hpp"

namespace qmb::elan {

Nic::Nic(sim::Engine& engine, net::Fabric& fabric, const Elan3Config& config,
         int node_index, sim::Tracer* tracer)
    : engine_(&engine),
      fabric_(&fabric),
      config_(&config),
      node_(node_index),
      tracer_(tracer),
      unit_(engine) {
  if (tracer_) trace_comp_ = tracer_->intern("elan");
  auto& reg = engine_->metrics();
  stats_.rdma_issued = reg.counter("elan.rdma_issued", node_);
  stats_.events_fired = reg.counter("elan.events_fired", node_);
  stats_.host_notifies = reg.counter("elan.host_notifies", node_);
  stats_.barrier_ops_completed = reg.counter("elan.barrier_ops_completed", node_);
  stats_.early_buffered = reg.counter("elan.early_buffered", node_);
  stats_.crc_dropped = reg.counter("nic.crc_dropped", node_);
  addr_ = fabric_->attach([this](net::Packet&& p) {
    if (p.corrupted) {  // inbound CRC check: discard before the event unit
      ++stats_.crc_dropped;
      trace("crc_drop", p.src.value(), 0, static_cast<std::int64_t>(p.id));
      return;
    }
    on_packet(std::move(p));
  });
}

void Nic::trace(std::string_view event, std::int64_t a, std::int64_t b,
                std::int64_t flow) {
  if (tracer_ && tracer_->enabled()) {
    tracer_->record(engine_->now(), trace_comp_, tracer_->intern(event), node_, a, b,
                    flow);
  }
}

void Nic::rdma_put(int dst_node, std::uint32_t bytes, ElanRdma body) {
  unit_.exec(config_->rdma_issue, [this, dst_node, bytes, body] {
    ++stats_.rdma_issued;
    const std::uint64_t flow = fabric_->send(net::Packet(
        addr_, net::NicAddr(dst_node), config_->header_bytes + bytes, body));
    // The RDMA-chain trigger: operands are the destination and the
    // BarrierTag-encoded group/seq/edge tag (host-message tags arrive
    // pre-encoded by the host executors; barrier-chain events carry the
    // group so multi-tenant traces stay attributable); flow ties it to the
    // wire hop.
    const std::uint32_t b =
        body.ev_class == ElanRdma::EventClass::kBarrier
            ? core::BarrierTag::encode(body.group, body.seq, body.tag)
            : body.tag;
    trace("rdma_trigger", dst_node, b, static_cast<std::int64_t>(flow));
  });
}

void Nic::on_packet(net::Packet&& p) {
  if (const auto* r = net::body_as<ElanRdma>(p)) {
    const ElanRdma body = *r;
    const std::uint64_t flow = p.id;
    // The event unit fires the remote event attached to the put.
    unit_.exec(config_->event_fire, [this, body, flow] {
      ++stats_.events_fired;
      trace("event_fire", static_cast<std::int64_t>(body.src_rank), body.tag,
            static_cast<std::int64_t>(flow));
      switch (body.ev_class) {
        case ElanRdma::EventClass::kBarrier:
          handle_barrier_event(body);
          return;
        case ElanRdma::EventClass::kHostMsg:
          // The event word DMAs into host memory; the host layer adds its
          // own poll cost on top.
          unit_.exec(config_->host_notify_dma, [this, body] {
            ++stats_.host_notifies;
            if (host_msg__handler_) host_msg__handler_(body);
          });
          return;
      }
    });
    return;
  }
  if (const auto* probe = net::body_as<TsetProbe>(p)) {
    const TsetProbe body = *probe;
    const std::uint64_t flow = p.id;
    unit_.exec(config_->tset_probe, [this, body, flow] {
      trace("tset_probe", static_cast<std::int64_t>(body.round), 0,
            static_cast<std::int64_t>(flow));
      if (probe_handler_) probe_handler_(body);
    });
    return;
  }
  if (const auto* go = net::body_as<TsetGo>(p)) {
    const TsetGo body = *go;
    const std::uint64_t flow = p.id;
    unit_.exec(config_->event_fire, [this, body, flow] {
      trace("tset_go", static_cast<std::int64_t>(body.round), 0,
            static_cast<std::int64_t>(flow));
      if (go_handler_) go_handler_(body);
    });
    return;
  }
  throw std::logic_error("unhandled packet body type at Elan NIC");
}

void Nic::create_barrier_group(ElanGroupDesc desc) {
  if (groups_.contains(desc.group_id)) {
    throw std::invalid_argument("elan barrier group id already registered");
  }
  Group g;
  g.desc = std::move(desc);
  groups_.emplace(g.desc.group_id, std::move(g));
}

Nic::Op& Nic::touch_slot(Group& g, std::uint32_t seq) {
  Op& op = g.slots[seq & 1];
  if (op.in_use && op.seq == seq) return op;
  if (op.in_use && !op.complete) {
    throw std::logic_error("elan barrier window violated: operation overtaken by seq+2");
  }
  if (op.exec) op.exec->reset();
  op.early.clear();
  op.wait_values.clear();
  op.seq = seq;
  op.in_use = true;
  op.active = false;
  op.complete = false;
  op.acc = 0;
  op.done = nullptr;
  return op;
}

void Nic::barrier_enter(std::uint32_t group, sim::EventCallback done) {
  // done is move-only; shared_ptr bridges it into the copyable DoneFn.
  collective_enter(group, 0,
                   [done = std::make_shared<sim::EventCallback>(std::move(done))](
                       std::int64_t) {
                     if (*done) (*done)();
                   });
}

void Nic::collective_enter(std::uint32_t group, std::int64_t value,
                           std::function<void(std::int64_t)> done) {
  unit_.exec(config_->command_process, [this, group, value, done = std::move(done)]() mutable {
    auto it = groups_.find(group);
    assert(it != groups_.end() && "collective_enter on unknown group");
    Group& g = it->second;
    const std::uint32_t seq = g.next_host_seq++;
    Op& op = touch_slot(g, seq);
    op.done = std::move(done);
    op.acc = value;
    activate(g, op);
  });
}

void Nic::activate(Group& g, Op& op) {
  op.active = true;
  if (!op.exec) {
    Group* gp = &g;
    Op* opp = &op;
    op.exec = std::make_unique<coll::ScheduleExecutor>(
        g.desc.schedule,
        [this, gp, opp](const coll::Edge& e) { barrier_send(*gp, opp->seq, e, opp->acc); },
        [this, gp, opp] { finish_barrier(*gp, *opp); });
    // Payloads fold into the accumulator as their step is consumed (never
    // at arrival time), matching the Myrinet engine's semantics.
    op.exec->set_step_consumer([gp, opp](const coll::Step& st) {
      for (const coll::Edge& w : st.waits) {
        const auto it = opp->wait_values.find(edge_key(w.peer, w.tag));
        if (it != opp->wait_values.end()) {
          opp->acc = coll::combine_value(gp->desc.op_kind, gp->desc.reduce_op, w.tag,
                                         opp->acc, it->second);
        }
      }
    });
  }
  trace("barrier_enter", g.desc.group_id, op.seq);
  for (const EarlyArrival& ea : op.early) {
    op.wait_values.emplace(edge_key(ea.peer_rank, ea.tag), ea.value);
  }
  op.exec->start();
  if (!op.complete) {
    for (const EarlyArrival& ea : op.early) {
      op.exec->on_arrival(ea.peer_rank, ea.tag);
      if (op.complete) break;
    }
  }
  op.early.clear();
}

void Nic::barrier_send(Group& g, std::uint32_t seq, const coll::Edge& e,
                       std::int64_t value) {
  // For a barrier this is a zero-byte RDMA put that only fires the peer's
  // chained event (paper Sec. 7: "RDMA operations with no data transfer
  // can be utilized to fire a remote event"); value collectives put their
  // payload words through the same descriptor.
  ElanRdma body;
  body.ev_class = ElanRdma::EventClass::kBarrier;
  body.group = g.desc.group_id;
  body.seq = seq;
  body.tag = e.tag;
  body.src_rank = static_cast<std::uint32_t>(g.desc.my_rank);
  body.value = value;
  const std::uint32_t payload =
      g.desc.op_kind == coll::OpKind::kBarrier
          ? 0u
          : g.desc.payload_bytes * static_cast<std::uint32_t>(coll::edge_payload_words(
                                       g.desc.op_kind, e.tag, value));
  body.payload_bytes = payload;
  const int dst_node = g.desc.rank_to_node->at(static_cast<std::size_t>(e.peer));
  rdma_put(dst_node, payload, body);
}

void Nic::handle_barrier_event(const ElanRdma& r) {
  auto it = groups_.find(r.group);
  if (it == groups_.end()) return;
  Group& g = it->second;
  Op& slot = g.slots[r.seq & 1];
  if (slot.in_use && slot.seq == r.seq) {
    if (slot.complete) return;  // hardware-reliable network: cannot happen
    if (slot.active) {
      slot.wait_values.emplace(edge_key(static_cast<int>(r.src_rank), r.tag), r.value);
      slot.exec->on_arrival(static_cast<int>(r.src_rank), r.tag);
    } else {
      ++stats_.early_buffered;
      slot.early.push_back({static_cast<int>(r.src_rank), r.tag, r.value});
    }
    return;
  }
  if (slot.in_use && r.seq < slot.seq) return;  // stale
  Op& op = touch_slot(g, r.seq);
  ++stats_.early_buffered;
  op.early.push_back({static_cast<int>(r.src_rank), r.tag, r.value});
}

void Nic::finish_barrier(Group& g, Op& op) {
  assert(!op.complete);
  op.complete = true;
  ++stats_.barrier_ops_completed;
  trace("barrier_complete", g.desc.group_id, op.seq);
  auto done = std::move(op.done);
  op.done = nullptr;
  const std::int64_t result = op.acc;
  // The final chained descriptor fires a *local* event whose word DMAs to
  // host memory, carrying the operation's result.
  unit_.exec(config_->host_notify_dma, [done = std::move(done), result]() mutable {
    if (done) done(result);
  });
}

}  // namespace qmb::elan
