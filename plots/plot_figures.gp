# Renders the paper-figure CSVs emitted by the benchmarks:
#
#   mkdir -p csv && QMB_CSV_DIR=csv ./build/bench/bench_fig5_myrinet_lanai9
#   QMB_CSV_DIR=csv ./build/bench/bench_fig6_myrinet_lanaixp
#   QMB_CSV_DIR=csv ./build/bench/bench_fig7_quadrics
#   QMB_CSV_DIR=csv ./build/bench/bench_fig8_scalability
#   gnuplot -e "csvdir='csv'" plots/plot_figures.gp
#
# Produces fig5.png .. fig8b.png next to the CSVs, matching the axes of the
# paper's Figs. 5-8.
if (!exists("csvdir")) csvdir = "csv"

set datafile separator ","
set terminal pngcairo size 800,560 font ",11"
set key top left
set grid ytics lc rgb "#dddddd"
set xlabel "Number of Nodes"
set ylabel "Latency (us)"

set output csvdir."/fig5.png"
set title "Figure 5: Myrinet LANai 9.1, 16-node 700 MHz cluster"
f5 = csvdir."/figure-5-barrier-latency-us-myrinet-lanai-9-1-16-node-700-mh.csv"
plot f5 using 1:2 with linespoints title "NIC-DS", \
     f5 using 1:3 with linespoints title "NIC-PE", \
     f5 using 1:4 with linespoints title "Host-DS", \
     f5 using 1:5 with linespoints title "Host-PE"

set output csvdir."/fig6.png"
set title "Figure 6: Myrinet LANai-XP, 8-node 2.4 GHz cluster"
f6 = csvdir."/figure-6-barrier-latency-us-myrinet-lanai-xp-8-node-2-4-ghz-.csv"
plot f6 using 1:2 with linespoints title "NIC-DS", \
     f6 using 1:3 with linespoints title "NIC-PE", \
     f6 using 1:4 with linespoints title "Host-DS", \
     f6 using 1:5 with linespoints title "Host-PE"

set output csvdir."/fig7.png"
set title "Figure 7: Quadrics/Elan3, 8-node cluster"
f7 = csvdir."/figure-7-barrier-latency-us-quadrics-elan3-8-node-700-mhz-cl.csv"
plot f7 using 1:2 with linespoints title "NIC-Barrier-DS", \
     f7 using 1:3 with linespoints title "NIC-Barrier-PE", \
     f7 using 1:4 with linespoints title "Elan-Barrier", \
     f7 using 1:5 with linespoints title "Elan-HW-Barrier"

set logscale x 2
set output csvdir."/fig8a.png"
set title "Figure 8(a): Quadrics scalability"
f8a = csvdir."/figure-8-a-quadrics-elan3-nic-barrier-scalability-us-.csv"
plot f8a using 1:2 with linespoints title "Quadrics (sim)", \
     f8a using 1:3 with linespoints title "Model (fit)", \
     f8a using 1:4 with linespoints dt 2 title "Model (paper)"

set output csvdir."/fig8b.png"
set title "Figure 8(b): Myrinet scalability"
f8b = csvdir."/figure-8-b-myrinet-lanai-xp-nic-barrier-scalability-us-.csv"
plot f8b using 1:2 with linespoints title "Myrinet (sim)", \
     f8b using 1:3 with linespoints title "Model (fit)", \
     f8b using 1:4 with linespoints dt 2 title "Model (paper)"
