#!/usr/bin/env python3
"""Per-round latency report over a qmbsim --chrome-trace export.

Consumes the Chrome trace_event JSON written by `qmbsim --chrome-trace PATH`
(or run::RunResult::trace_json) and prints a per-round breakdown of the
barrier/collective's wire traffic:

  round | hops | hop latency min/med/max | trigger gap min/med/max | nacks | retx

Definitions:
  * A *hop* is one packet's fabric traversal, paired injection->delivery via
    the exporter's Chrome flow events (ph "s"/"f" sharing a flow id).
  * A hop belongs to a *round* when a protocol-level trigger event
    (myri coll_send or elan rdma_trigger) carries the same flow id; the
    trigger's `b` operand is the schedule-edge tag, i.e. the round for plain
    exchange steps. Sentinel tags decode to the pairwise-exchange pre/post
    and gather-broadcast up/down phases. Hops with no trigger (GM data
    fragments, NACK wires, tset probes) land in the "other" row.
  * The *trigger gap* is the spread between consecutive trigger timestamps
    inside one round -- the skew with which the round's sends were issued.
  * nacks counts coll_nack sends tagged with the round; retx counts
    coll_nack_rx (each NACK received triggers at most one protocol
    retransmission). GM-level mcp_retransmit events are totalled separately
    since they carry a sequence number, not a round.

All timestamps in the export are microseconds; the table prints microseconds.
"""

import argparse
import json
import statistics
import sys

# Sentinel schedule-edge tags (src/core/coll_tag.hpp / core/schedule.hpp).
SENTINEL_TAGS = {
    0x100: "pre",    # pairwise exchange: high rank registers with partner
    0x101: "post",   # pairwise exchange: partner releases high rank
    0x200: "up",     # gather-broadcast: combine toward the root
    0x201: "down",   # gather-broadcast: release from the root
}

TRIGGER_EVENTS = ("coll_send", "rdma_trigger")
OTHER_ROUND = "other"


BARRIER_TAG_BASE = 0x80000000  # core::BarrierTag: [31] base, [0..11] edge tag


def group_of(tag):
    """BarrierTag group field, or None for plain (non-collective) tags.

    core/coll_tag.hpp packs [31] base, [30..20] group, [19..12] seq,
    [11..0] edge tag -- multi-tenant traces are attributable to their
    process group straight from the wire tag.
    """
    if tag is None:
        return None
    tag = int(tag)
    if not tag & BARRIER_TAG_BASE:
        return None
    return (tag >> 20) & 0x7FF


def round_label(tag):
    if tag is None:
        return OTHER_ROUND
    tag = int(tag)
    if tag & BARRIER_TAG_BASE:
        # Host-level executors encode group/seq/edge into one GM tag
        # (core/coll_tag.hpp); the schedule edge lives in the low 12 bits.
        tag &= 0xFFF
    if tag in SENTINEL_TAGS:
        return SENTINEL_TAGS[tag]
    return str(tag)


def round_sort_key(label):
    # Numeric rounds first in order, then the named phases, then "other".
    try:
        return (0, int(label), "")
    except ValueError:
        order = {"pre": 0, "up": 1, "down": 2, "post": 3, OTHER_ROUND: 4}
        return (1, order.get(label, 5), label)


def fmt_us(v):
    return "-" if v is None else f"{v:.3f}"


def spread(values):
    """(min, median, max) of a sequence, or (None, None, None) when empty."""
    if not values:
        return (None, None, None)
    return (min(values), statistics.median(values), max(values))


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        return doc.get("traceEvents", [])
    return doc  # bare-array form is also valid Chrome trace JSON


def build_report(events):
    flow_start = {}     # flow id -> injection ts
    flow_finish = {}    # flow id -> earliest delivery ts (dups keep first)
    flow_round = {}     # flow id -> round label
    flow_group = {}     # flow id -> BarrierTag group id
    triggers = {}       # round label -> [trigger ts]
    group_triggers = {}  # group id -> trigger count
    group_nacks = {}    # group id -> count
    nacks = {}          # round label -> count
    retx = {}           # round label -> count
    mcp_retransmits = 0
    dropped = 0

    for e in events:
        ph = e.get("ph")
        name = e.get("name", "")
        if ph == "M":
            if name == "qmb_trace_truncated":
                dropped = int(e.get("args", {}).get("dropped_events", 0))
            continue
        if ph == "s" and e.get("cat") == "flow":
            flow_start.setdefault(e["id"], e["ts"])
            continue
        if ph == "f" and e.get("cat") == "flow":
            flow_finish.setdefault(e["id"], e["ts"])
            continue
        if ph != "i":
            continue
        args = e.get("args", {})
        if name in TRIGGER_EVENTS:
            label = round_label(args.get("b"))
            triggers.setdefault(label, []).append(e["ts"])
            group = group_of(args.get("b"))
            if group is not None:
                group_triggers[group] = group_triggers.get(group, 0) + 1
            if "flow" in args:
                flow_round[args["flow"]] = label
                if group is not None:
                    flow_group[args["flow"]] = group
        elif name == "coll_nack":
            label = round_label(args.get("b"))
            nacks[label] = nacks.get(label, 0) + 1
            group = group_of(args.get("b"))
            if group is not None:
                group_nacks[group] = group_nacks.get(group, 0) + 1
        elif name == "coll_nack_rx":
            label = round_label(args.get("b"))
            retx[label] = retx.get(label, 0) + 1
        elif name == "mcp_retransmit":
            mcp_retransmits += 1

    hops = {}  # round label -> [hop latency us]
    group_hops = {}  # group id -> [hop latency us]
    dangling = 0
    for fid, t0 in flow_start.items():
        t1 = flow_finish.get(fid)
        if t1 is None:
            dangling += 1  # injected but not delivered inside the trace tail
            continue
        label = flow_round.get(fid, OTHER_ROUND)
        hops.setdefault(label, []).append(t1 - t0)
        group = flow_group.get(fid)
        if group is not None:
            group_hops.setdefault(group, []).append(t1 - t0)

    rounds = sorted(
        set(hops) | set(triggers) | set(nacks) | set(retx), key=round_sort_key
    )
    rows = []
    for label in rounds:
        lat = spread(hops.get(label, []))
        ts = sorted(triggers.get(label, []))
        gaps = [b - a for a, b in zip(ts, ts[1:])]
        gap = spread(gaps)
        rows.append(
            {
                "round": label,
                "hops": len(hops.get(label, [])),
                "lat": lat,
                "gap": gap,
                "nacks": nacks.get(label, 0),
                "retx": retx.get(label, 0),
            }
        )
    group_rows = []
    for group in sorted(set(group_hops) | set(group_triggers) | set(group_nacks)):
        group_rows.append(
            {
                "group": group,
                "hops": len(group_hops.get(group, [])),
                "lat": spread(group_hops.get(group, [])),
                "triggers": group_triggers.get(group, 0),
                "nacks": group_nacks.get(group, 0),
            }
        )
    return {
        "rows": rows,
        "group_rows": group_rows,
        "flows": len(flow_start),
        "paired": len(flow_start) - dangling,
        "dangling": dangling,
        "mcp_retransmits": mcp_retransmits,
        "dropped": dropped,
    }


def print_report(rep, out=sys.stdout):
    if rep["dropped"]:
        print(
            f"warning: trace ring wrapped, {rep['dropped']} oldest events "
            "dropped; this report covers the tail of the timeline",
            file=sys.stderr,
        )
    print(
        f"flows: {rep['flows']} injected, {rep['paired']} paired, "
        f"{rep['dangling']} dangling",
        file=out,
    )
    if rep["mcp_retransmits"]:
        print(f"gm-level retransmits (mcp_retransmit): {rep['mcp_retransmits']}",
              file=out)
    header = (
        f"{'round':>6} {'hops':>5} "
        f"{'hop min':>9} {'hop med':>9} {'hop max':>9} "
        f"{'gap min':>9} {'gap med':>9} {'gap max':>9} "
        f"{'nacks':>5} {'retx':>4}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for r in rep["rows"]:
        print(
            f"{r['round']:>6} {r['hops']:>5} "
            f"{fmt_us(r['lat'][0]):>9} {fmt_us(r['lat'][1]):>9} "
            f"{fmt_us(r['lat'][2]):>9} "
            f"{fmt_us(r['gap'][0]):>9} {fmt_us(r['gap'][1]):>9} "
            f"{fmt_us(r['gap'][2]):>9} "
            f"{r['nacks']:>5} {r['retx']:>4}",
            file=out,
        )
    if not rep["rows"]:
        print("(no flow or trigger events in trace)", file=out)
    # Per-group breakdown: only meaningful when the trace carries more than
    # the single default group (a multi-tenant --workload run).
    groups = rep.get("group_rows", [])
    if len(groups) > 1:
        gheader = (
            f"{'group':>6} {'hops':>5} "
            f"{'hop min':>9} {'hop med':>9} {'hop max':>9} "
            f"{'triggers':>8} {'nacks':>5}"
        )
        print("", file=out)
        print("per-group wire traffic (BarrierTag group field):", file=out)
        print(gheader, file=out)
        print("-" * len(gheader), file=out)
        for g in groups:
            print(
                f"{g['group']:>6} {g['hops']:>5} "
                f"{fmt_us(g['lat'][0]):>9} {fmt_us(g['lat'][1]):>9} "
                f"{fmt_us(g['lat'][2]):>9} "
                f"{g['triggers']:>8} {g['nacks']:>5}",
                file=out,
            )


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Per-round latency breakdown of a qmbsim Chrome trace "
        "(units: microseconds)."
    )
    ap.add_argument("trace", help="path to a qmbsim --chrome-trace JSON export")
    args = ap.parse_args(argv)
    try:
        events = load_events(args.trace)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read trace: {err}", file=sys.stderr)
        return 1
    print_report(build_report(events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
