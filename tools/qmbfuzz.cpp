// qmbfuzz — schedule-space protocol fuzzer driver.
//
// Fans seeds across SweepRunner threads; every failing case is delta-
// debugged down to a minimal spec and written as a replayable JSON repro
// artifact next to the exact command line that re-runs it.
//
//   qmbfuzz --seed 1 --runs 200                 # fixed range: bit-deterministic
//   qmbfuzz --seed 1 --runs 64 --threads 8      # same verdicts, any thread count
//   qmbfuzz --budget 120 --out repros/          # keep fuzzing ~120 wall seconds
//   qmbfuzz --replay repros/repro-1234.json     # re-run one artifact
//   qmbfuzz --seed 1 --runs 200 --inject-bug    # plant the skip-retransmit bug;
//                                               # the invariants must catch it
//
// Determinism: for a fixed (--seed, --runs) the verdicts, the repro
// artifacts, and the final digest are bit-identical across reruns and
// --threads values. --budget mode trades that away (the batch count
// depends on wall-clock speed) and says so on stdout.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include "cli.hpp"
#include "fuzz/fuzzer.hpp"

using namespace qmb;

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::size_t runs = 100;
  unsigned threads = 0;         // 0 = default_sweep_threads()
  long budget_seconds = 0;      // 0 = fixed --runs mode
  std::string out_dir = "fuzz-repros";
  std::string replay_path;      // --replay mode when non-empty
  std::vector<net::FaultSpec> extra_faults;  // appended to a replayed spec
  fuzz::FuzzOptions fuzz;
  int shrink_budget = 200;
  bool json = false;
  bool coverage = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed S            base seed of the fuzz stream (default 1)\n"
      "  --runs N            cases to run (default 100)\n"
      "  --threads T         worker threads (default: all cores)\n"
      "  --budget SECONDS    keep launching batches of --runs until the wall-clock\n"
      "                      budget is spent (seed range advances per batch;\n"
      "                      verdicts stay per-case deterministic, but the batch\n"
      "                      count is machine-dependent)\n"
      "  --out DIR           where repro artifacts go (default fuzz-repros/)\n"
      "  --replay FILE       re-run one repro artifact (or bare spec JSON) and\n"
      "                      re-check every invariant; exit 1 if it still fails\n"
      "  --fault SPEC        append a fault rule to the replayed spec; same\n"
      "                      grammar as qmbsim (drop:nth=3,src=2 ...)\n"
      "  --engine-threads T  run every derived case on the conservative-PDES\n"
      "                      engine with T workers (default 1 = sequential).\n"
      "                      Verdicts and the digest are invariant under this\n"
      "                      knob; cases the engine cannot shard fall back to\n"
      "                      the sequential engine automatically\n"
      "  --inject-bug        plant the deliberate skip-retransmission bug in\n"
      "                      every Myrinet NIC case (fuzzer self-check: the\n"
      "                      invariants must catch it)\n"
      "  --max-nodes N       cap derived cluster sizes (default 12)\n"
      "  --max-iters K       cap derived timed iterations (default 10)\n"
      "  --horizon-ms H      per-case simulated-time watchdog (default 10000)\n"
      "  --shrink-budget B   candidate runs per failure (default 200; 0 = off)\n"
      "  --coverage          also print how many derived cases drew each barrier\n"
      "                      algorithm (and split-phase overlap) over the seed\n"
      "                      range, plus every (value op, algorithm) pair, so CI\n"
      "                      can assert every capability pair appears\n"
      "  --json              machine-readable verdict lines\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      o.seed = std::strtoull(cli::require_value(argc, argv, i, "--seed"), nullptr, 10);
    } else if (a == "--runs") {
      o.runs = std::strtoull(cli::require_value(argc, argv, i, "--runs"), nullptr, 10);
    } else if (a == "--threads") {
      o.threads = static_cast<unsigned>(
          std::atoi(cli::require_value(argc, argv, i, "--threads")));
    } else if (a == "--budget") {
      o.budget_seconds = std::atol(cli::require_value(argc, argv, i, "--budget"));
    } else if (a == "--out") {
      o.out_dir = cli::require_value(argc, argv, i, "--out");
    } else if (a == "--replay") {
      o.replay_path = cli::require_value(argc, argv, i, "--replay");
    } else if (a == "--fault") {
      net::FaultSpec f;
      if (const std::string err =
              cli::parse_fault(cli::require_value(argc, argv, i, "--fault"), f);
          !err.empty()) {
        std::fprintf(stderr, "--fault: %s\n", err.c_str());
        usage(argv[0]);
      }
      o.extra_faults.push_back(f);
    } else if (a == "--engine-threads") {
      o.fuzz.engine_threads =
          std::atoi(cli::require_value(argc, argv, i, "--engine-threads"));
      if (o.fuzz.engine_threads < 1) {
        std::fprintf(stderr, "--engine-threads must be >= 1\n");
        usage(argv[0]);
      }
    } else if (a == "--inject-bug") {
      o.fuzz.inject_bug = true;
    } else if (a == "--max-nodes") {
      o.fuzz.max_nodes = std::atoi(cli::require_value(argc, argv, i, "--max-nodes"));
    } else if (a == "--max-iters") {
      o.fuzz.max_iters = std::atoi(cli::require_value(argc, argv, i, "--max-iters"));
    } else if (a == "--horizon-ms") {
      o.fuzz.horizon_ms = std::atol(cli::require_value(argc, argv, i, "--horizon-ms"));
    } else if (a == "--shrink-budget") {
      o.shrink_budget = std::atoi(cli::require_value(argc, argv, i, "--shrink-budget"));
    } else if (a == "--coverage") {
      o.coverage = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (o.runs == 0) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    std::exit(2);
  }
  if (!o.replay_path.empty() && (o.budget_seconds > 0)) {
    std::fprintf(stderr, "--replay and --budget are mutually exclusive\n");
    std::exit(2);
  }
  return o;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(2);
  }
  std::fputs(text.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void print_violations(const std::vector<fuzz::Violation>& violations) {
  for (const fuzz::Violation& v : violations) {
    std::printf("  violated %-20s %s\n", v.invariant.c_str(), v.detail.c_str());
  }
}

int run_replay(const Options& o) {
  run::ExperimentSpec spec = fuzz::replay_spec_from_json(read_file(o.replay_path));
  for (const net::FaultSpec& f : o.extra_faults) spec.faults.push_back(f);
  const fuzz::CaseResult c = fuzz::run_case(spec);
  if (o.json) {
    std::printf("{\"replay\":\"%s\",\"failed\":%s,\"violations\":%zu,"
                "\"fingerprint\":\"%016llx\"}\n",
                o.replay_path.c_str(), c.failed() ? "true" : "false",
                c.violations.size(), static_cast<unsigned long long>(c.fingerprint));
  } else {
    std::printf("replay %s: %s (fingerprint %016llx)\n", o.replay_path.c_str(),
                c.failed() ? "STILL FAILING" : "clean",
                static_cast<unsigned long long>(c.fingerprint));
    print_violations(c.violations);
  }
  return c.failed() ? 1 : 0;
}

/// Re-derives the seed range's specs (derive_case is a pure function of
/// the seed, so this costs microseconds per case, not a simulation) and
/// prints one draw count per barrier algorithm plus the split-phase
/// overlap count, then one count per advertised (value kind, algorithm)
/// pair. CI greps both lines to prove the smoke range exercises every
/// algorithm in the zoo and every capability pair.
void print_coverage(const Options& o, std::uint64_t base_seed) {
  constexpr std::size_t kAlgos = std::size(coll::kBarrierAlgorithms);
  constexpr coll::OpKind kValueKinds[] = {
      coll::OpKind::kBcast, coll::OpKind::kAllreduce, coll::OpKind::kAllgather,
      coll::OpKind::kAlltoall};
  std::size_t counts[kAlgos] = {};
  std::size_t pair_counts[std::size(kValueKinds)][kAlgos] = {};
  std::size_t overlap_cases = 0;
  for (std::size_t i = 0; i < o.runs; ++i) {
    const run::ExperimentSpec s = fuzz::derive_case(run::seed_for(base_seed, i), o.fuzz);
    for (std::size_t k = 0; k < kAlgos; ++k) {
      if (s.algorithm == coll::kBarrierAlgorithms[k]) ++counts[k];
    }
    for (std::size_t v = 0; v < std::size(kValueKinds); ++v) {
      if (s.op != kValueKinds[v]) continue;
      for (std::size_t k = 0; k < kAlgos; ++k) {
        if (s.algorithm == coll::kBarrierAlgorithms[k]) ++pair_counts[v][k];
      }
    }
    if (s.overlap_us >= 0.0) ++overlap_cases;
  }
  std::printf("algorithm coverage:");
  for (std::size_t k = 0; k < kAlgos; ++k) {
    const std::string name{run::algorithm_cli_name(coll::kBarrierAlgorithms[k])};
    std::printf(" %s=%zu", name.c_str(), counts[k]);
  }
  std::printf(" overlap=%zu\n", overlap_cases);
  // One token per advertised (kind, algorithm) capability pair, so CI can
  // assert every pair the substrates advertise was actually drawn.
  std::printf("collective coverage:");
  for (std::size_t v = 0; v < std::size(kValueKinds); ++v) {
    const std::string op{run::to_string(kValueKinds[v])};
    for (const coll::Algorithm a : core::collective_algorithms_for(kValueKinds[v])) {
      std::size_t c = 0;
      for (std::size_t k = 0; k < kAlgos; ++k) {
        if (coll::kBarrierAlgorithms[k] == a) c = pair_counts[v][k];
      }
      std::printf(" %s:%s=%zu", op.c_str(),
                  std::string(run::algorithm_cli_name(a)).c_str(), c);
    }
  }
  std::printf("\n");
}

/// Runs one fixed seed range and writes artifacts. Returns the report.
fuzz::FuzzReport run_batch(const Options& o, std::uint64_t base_seed) {
  fuzz::FuzzReport rep =
      fuzz::fuzz_range(base_seed, o.runs, o.threads, o.fuzz, o.shrink_budget);
  for (std::size_t i = 0; i < rep.failures.size(); ++i) {
    const fuzz::CaseResult& found = rep.failures[i];
    const fuzz::ShrinkOutcome& min = rep.shrunk[i];
    std::filesystem::create_directories(o.out_dir);
    const std::string path =
        o.out_dir + "/repro-" + std::to_string(found.seed) + ".json";
    write_file(path, fuzz::repro_to_json(found, min, path));
    if (o.json) {
      std::printf("{\"seed\":\"%llu\",\"artifact\":\"%s\",\"rules\":%zu,"
                  "\"shrink_attempts\":%d}\n",
                  static_cast<unsigned long long>(found.seed), path.c_str(),
                  min.minimal.faults.size(), min.attempts);
    } else {
      std::printf("FAIL seed %llu -> %s (shrunk to %d nodes, %d iters, %zu fault "
                  "rules in %d runs)\n",
                  static_cast<unsigned long long>(found.seed), path.c_str(),
                  min.minimal.nodes, min.minimal.iters, min.minimal.faults.size(),
                  min.attempts);
      print_violations(min.violations);
      std::printf("  replay: qmbfuzz --replay %s\n", path.c_str());
    }
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    if (!o.replay_path.empty()) return run_replay(o);

    std::size_t total_runs = 0;
    std::size_t total_failed = 0;
    std::uint64_t digest = 0;
    if (o.budget_seconds > 0) {
      // Budget mode: launch batches until the wall clock runs out. Each
      // batch b covers the same seeds on every machine; only how many
      // batches fit is machine-dependent.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(o.budget_seconds);
      std::uint64_t batch = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const fuzz::FuzzReport rep = run_batch(o, o.seed + batch);
        total_runs += rep.runs;
        total_failed += rep.failed;
        digest ^= rep.verdict_digest;
        ++batch;
      }
      std::printf("budget spent: %zu cases in %llu batches, %zu failing\n", total_runs,
                  static_cast<unsigned long long>(batch), total_failed);
    } else {
      const fuzz::FuzzReport rep = run_batch(o, o.seed);
      total_runs = rep.runs;
      total_failed = rep.failed;
      digest = rep.verdict_digest;
      if (o.json) {
        std::printf("{\"seed\":\"%llu\",\"runs\":%zu,\"failed\":%zu,"
                    "\"digest\":\"%016llx\"}\n",
                    static_cast<unsigned long long>(o.seed), total_runs, total_failed,
                    static_cast<unsigned long long>(digest));
      } else {
        std::printf("%zu cases from seed %llu: %zu failing, verdict digest %016llx\n",
                    total_runs, static_cast<unsigned long long>(o.seed), total_failed,
                    static_cast<unsigned long long>(digest));
      }
    }
    if (o.coverage) print_coverage(o, o.seed);
    return total_failed > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
