// benchdiff — compare two bench-suite JSON documents and fail on regression.
//
//   benchdiff baseline.json current.json
//   benchdiff --threshold 2.5 --fail-on-fingerprint bench/baseline.json BENCH_suite.json
//
// Exit codes: 0 clean, 1 regression detected (mean latency grew past the
// threshold on any common key, or a fingerprint changed when
// --fail-on-fingerprint is set), 2 usage/parse error. CI runs this against
// the committed bench/baseline.json so a perf or determinism break shows
// up as a keyed delta in the job log.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/benchdiff.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold PCT] [--fail-on-fingerprint] "
               "[--host-threshold PCT] BASELINE CURRENT\n"
               "  --threshold PCT        mean-latency growth counted as a regression\n"
               "                         (default 5.0)\n"
               "  --fail-on-fingerprint  a changed determinism fingerprint alone fails\n"
               "  --host-threshold PCT   wall-clock drift flagged in the advisory\n"
               "                         host-time section (default 25.0); host time\n"
               "                         never affects the exit code\n"
               "exit: 0 clean, 1 regression, 2 usage or parse error\n",
               argv0);
  std::exit(2);
}

std::string slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  qmb::obs::BenchDiffOptions opts;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold") {
      if (i + 1 >= argc) usage(argv[0]);
      char* end = nullptr;
      opts.threshold_pct = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || opts.threshold_pct < 0) usage(argv[0]);
    } else if (a == "--fail-on-fingerprint") {
      opts.fail_on_fingerprint = true;
    } else if (a == "--host-threshold") {
      if (i + 1 >= argc) usage(argv[0]);
      char* end = nullptr;
      opts.host_threshold_pct = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || opts.host_threshold_pct < 0) usage(argv[0]);
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "benchdiff: unknown option %s\n", a.c_str());
      usage(argv[0]);
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (npaths != 2) usage(argv[0]);

  try {
    const auto baseline = qmb::obs::JsonValue::parse(slurp(paths[0]));
    const auto current = qmb::obs::JsonValue::parse(slurp(paths[1]));
    const auto report = qmb::obs::diff_bench_suites(baseline, current, opts);
    std::fputs(report.text.c_str(), stdout);
    if (!report.host_text.empty()) std::fputs(report.host_text.c_str(), stdout);
    return report.exit_code(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchdiff: %s\n", e.what());
    return 2;
  }
}
