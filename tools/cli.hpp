// Shared command-line helpers for the repo's tools (qmbsim, qmbfuzz,
// storm_launcher): duration literals and the one --fault rule grammar, so
// every binary that injects faults speaks the same language.
//
// Fault grammar:   ACTION[:KEY=VALUE[,KEY=VALUE...]]
//
//   actions  drop | dup | duplicate | corrupt | reorder | blackout
//            (blackout = drop with a required time window)
//   keys     src=N dst=N        node filters (default: any)
//            nth=N              fire on the Nth matching packet
//            p=P seed=S         fire per-match with probability P
//            from=T until=T     fire within the [from, until) window
//            delay=T            reorder's extra delivery delay
//   times    numbers with a unit suffix: 500ps 10ns 50us 2ms 1s
//            (bare numbers are picoseconds)
//
//   --fault drop:nth=3,src=2,dst=4
//   --fault dup:p=0.01,seed=7
//   --fault reorder:nth=2,delay=10us
//   --fault blackout:from=100us,until=250us
//
// Workload grammar:  KEY=VALUE[,KEY=VALUE...]   (bare keys for booleans)
//
//   groups=N size=R          N concurrent groups of R ranks each
//   mix=OP[+OP...]           barrier|bcast|allreduce|allgather (issue mix)
//   arrival=closed|fixed|poisson|burst   period=T (e.g. 20us)
//   burst-on=T burst-off=T   burst mode's on/off windows
//   member=block|stride|random           group membership policy
//   flood=S                  background p2p flood streams
//   flood-bytes=B flood-period=T flood-random
//   seed=S                   workload RNG seed (0 = derive from --seed)
//
//   --workload groups=8,size=4,mix=barrier+allreduce,arrival=poisson,period=20us
//   --workload groups=64,size=4,member=stride,flood=8,flood-bytes=4096
//
// Header-only so tools and tests include it without another library.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "load/workload.hpp"
#include "net/fault.hpp"
#include "sim/time.hpp"

namespace qmb::cli {

/// Parses "50us"-style duration literals (units ps/ns/us/ms/s; bare number
/// = picoseconds). Rejects empty input, garbage, and unknown suffixes.
inline std::optional<sim::SimDuration> parse_duration(std::string_view s) {
  if (s.empty()) return std::nullopt;
  const std::string text(s);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return std::nullopt;
  const std::string_view unit(end);
  double mult = 1.0;  // picoseconds
  if (unit == "ns") {
    mult = 1e3;
  } else if (unit == "us") {
    mult = 1e6;
  } else if (unit == "ms") {
    mult = 1e9;
  } else if (unit == "s") {
    mult = 1e12;
  } else if (!unit.empty() && unit != "ps") {
    return std::nullopt;
  }
  if (v < 0) return std::nullopt;
  return sim::SimDuration(static_cast<std::int64_t>(v * mult + 0.5));
}

/// Parses one --fault value into `out`. Returns an empty string on success,
/// else a printable error (which includes net::validate()'s verdict, so a
/// grammatically valid but semantically broken rule is also caught here).
inline std::string parse_fault(std::string_view text, net::FaultSpec& out) {
  net::FaultSpec f;
  const auto colon = text.find(':');
  const std::string_view action =
      text.substr(0, colon == std::string_view::npos ? text.size() : colon);
  const bool blackout = action == "blackout";
  if (blackout) {
    f.action = net::FaultAction::kDrop;
  } else if (const auto a = net::parse_fault_action(action)) {
    f.action = *a;
  } else {
    return "unknown fault action '" + std::string(action) +
           "' (valid: drop, dup, corrupt, reorder, blackout)";
  }

  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view kv =
        rest.substr(0, comma == std::string_view::npos ? rest.size() : comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return "fault key '" + std::string(kv) + "' needs a value (key=value)";
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string value(kv.substr(eq + 1));
    if (key == "src") {
      f.src = std::atoi(value.c_str());
    } else if (key == "dst") {
      f.dst = std::atoi(value.c_str());
    } else if (key == "nth") {
      f.nth = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "p" || key == "prob") {
      f.prob = std::atof(value.c_str());
    } else if (key == "seed") {
      f.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "from" || key == "until" || key == "delay") {
      const auto d = parse_duration(value);
      if (!d) {
        return "bad duration '" + value + "' for fault key '" + std::string(key) +
               "' (use e.g. 50us, 2ms)";
      }
      if (key == "from") {
        f.from_ps = d->picos();
      } else if (key == "until") {
        f.until_ps = d->picos();
      } else {
        f.delay_ps = d->picos();
      }
    } else {
      return "unknown fault key '" + std::string(key) +
             "' (valid: src, dst, nth, p, seed, from, until, delay)";
    }
  }

  if (blackout && f.until_ps <= f.from_ps) {
    return "blackout needs from=<time>,until=<time> with until > from";
  }
  if (std::string err = net::validate(f); !err.empty()) return err;
  out = f;
  return {};
}

/// Parses one --workload value into `out`. Returns an empty string on
/// success, else a printable error. Structural validity (group budget vs.
/// substrate caps, membership injectivity) is run::validate()'s job — this
/// only parses the grammar.
inline std::string parse_workload(std::string_view text, load::WorkloadSpec& out) {
  load::WorkloadSpec w;
  w.groups = 1;  // "groups" may be omitted when any other key is given
  std::string_view rest = text;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view kv =
        rest.substr(0, comma == std::string_view::npos ? rest.size() : comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    const std::string_view key = kv.substr(0, eq);
    const std::string value(eq == std::string_view::npos ? std::string_view{}
                                                         : kv.substr(eq + 1));
    const auto need_duration = [&](double& us) -> std::string {
      const auto d = parse_duration(value);
      if (!d) {
        return "bad duration '" + value + "' for workload key '" + std::string(key) +
               "' (use e.g. 20us, 2ms)";
      }
      us = d->micros();
      return {};
    };
    if (key == "groups") {
      w.groups = std::atoi(value.c_str());
    } else if (key == "size") {
      w.group_size = std::atoi(value.c_str());
    } else if (key == "mix") {
      w.mix.clear();
      std::string_view ops = value;
      while (!ops.empty()) {
        const auto plus = ops.find('+');
        const std::string_view op =
            ops.substr(0, plus == std::string_view::npos ? ops.size() : plus);
        ops = plus == std::string_view::npos ? std::string_view{} : ops.substr(plus + 1);
        const auto k = coll::parse_op_kind(op);
        if (!k) {
          return "unknown op '" + std::string(op) +
                 "' in workload mix (valid: barrier, bcast, allreduce, allgather, "
                 "alltoall; join with '+')";
        }
        w.mix.push_back(*k);
      }
    } else if (key == "arrival") {
      const auto a = load::parse_arrival(value);
      if (!a) {
        return "unknown arrival '" + value +
               "' (valid: closed, fixed, poisson, burst)";
      }
      w.arrival = *a;
    } else if (key == "member") {
      const auto m = load::parse_membership(value);
      if (!m) {
        return "unknown membership '" + value + "' (valid: block, stride, random)";
      }
      w.membership = *m;
    } else if (key == "period") {
      if (auto err = need_duration(w.period_us); !err.empty()) return err;
    } else if (key == "burst-on") {
      if (auto err = need_duration(w.burst_on_us); !err.empty()) return err;
    } else if (key == "burst-off") {
      if (auto err = need_duration(w.burst_off_us); !err.empty()) return err;
    } else if (key == "flood") {
      w.flood_streams = std::atoi(value.c_str());
    } else if (key == "flood-bytes") {
      w.flood_bytes = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "flood-period") {
      if (auto err = need_duration(w.flood_period_us); !err.empty()) return err;
    } else if (key == "flood-random") {
      w.flood_random = true;
    } else if (key == "seed") {
      w.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return "unknown workload key '" + std::string(key) +
             "' (valid: groups, size, mix, arrival, member, period, burst-on, "
             "burst-off, flood, flood-bytes, flood-period, flood-random, seed)";
    }
  }
  if (w.groups < 1) return "workload needs groups=N with N >= 1";
  out = w;
  return {};
}

/// Fetches the value token following argv[i] or exits with a usage error —
/// the shared shape of every tool's flag loop.
inline const char* require_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace qmb::cli
