// Shared command-line helpers for the repo's tools (qmbsim, qmbfuzz,
// storm_launcher): duration literals and the one --fault rule grammar, so
// every binary that injects faults speaks the same language.
//
// Fault grammar:   ACTION[:KEY=VALUE[,KEY=VALUE...]]
//
//   actions  drop | dup | duplicate | corrupt | reorder | blackout
//            (blackout = drop with a required time window)
//   keys     src=N dst=N        node filters (default: any)
//            nth=N              fire on the Nth matching packet
//            p=P seed=S         fire per-match with probability P
//            from=T until=T     fire within the [from, until) window
//            delay=T            reorder's extra delivery delay
//   times    numbers with a unit suffix: 500ps 10ns 50us 2ms 1s
//            (bare numbers are picoseconds)
//
//   --fault drop:nth=3,src=2,dst=4
//   --fault dup:p=0.01,seed=7
//   --fault reorder:nth=2,delay=10us
//   --fault blackout:from=100us,until=250us
//
// Header-only so tools and tests include it without another library.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "net/fault.hpp"
#include "sim/time.hpp"

namespace qmb::cli {

/// Parses "50us"-style duration literals (units ps/ns/us/ms/s; bare number
/// = picoseconds). Rejects empty input, garbage, and unknown suffixes.
inline std::optional<sim::SimDuration> parse_duration(std::string_view s) {
  if (s.empty()) return std::nullopt;
  const std::string text(s);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return std::nullopt;
  const std::string_view unit(end);
  double mult = 1.0;  // picoseconds
  if (unit == "ns") {
    mult = 1e3;
  } else if (unit == "us") {
    mult = 1e6;
  } else if (unit == "ms") {
    mult = 1e9;
  } else if (unit == "s") {
    mult = 1e12;
  } else if (!unit.empty() && unit != "ps") {
    return std::nullopt;
  }
  if (v < 0) return std::nullopt;
  return sim::SimDuration(static_cast<std::int64_t>(v * mult + 0.5));
}

/// Parses one --fault value into `out`. Returns an empty string on success,
/// else a printable error (which includes net::validate()'s verdict, so a
/// grammatically valid but semantically broken rule is also caught here).
inline std::string parse_fault(std::string_view text, net::FaultSpec& out) {
  net::FaultSpec f;
  const auto colon = text.find(':');
  const std::string_view action =
      text.substr(0, colon == std::string_view::npos ? text.size() : colon);
  const bool blackout = action == "blackout";
  if (blackout) {
    f.action = net::FaultAction::kDrop;
  } else if (const auto a = net::parse_fault_action(action)) {
    f.action = *a;
  } else {
    return "unknown fault action '" + std::string(action) +
           "' (valid: drop, dup, corrupt, reorder, blackout)";
  }

  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view kv =
        rest.substr(0, comma == std::string_view::npos ? rest.size() : comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return "fault key '" + std::string(kv) + "' needs a value (key=value)";
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string value(kv.substr(eq + 1));
    if (key == "src") {
      f.src = std::atoi(value.c_str());
    } else if (key == "dst") {
      f.dst = std::atoi(value.c_str());
    } else if (key == "nth") {
      f.nth = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "p" || key == "prob") {
      f.prob = std::atof(value.c_str());
    } else if (key == "seed") {
      f.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "from" || key == "until" || key == "delay") {
      const auto d = parse_duration(value);
      if (!d) {
        return "bad duration '" + value + "' for fault key '" + std::string(key) +
               "' (use e.g. 50us, 2ms)";
      }
      if (key == "from") {
        f.from_ps = d->picos();
      } else if (key == "until") {
        f.until_ps = d->picos();
      } else {
        f.delay_ps = d->picos();
      }
    } else {
      return "unknown fault key '" + std::string(key) +
             "' (valid: src, dst, nth, p, seed, from, until, delay)";
    }
  }

  if (blackout && f.until_ps <= f.from_ps) {
    return "blackout needs from=<time>,until=<time> with until > from";
  }
  if (std::string err = net::validate(f); !err.empty()) return err;
  out = f;
  return {};
}

/// Fetches the value token following argv[i] or exits with a usage error —
/// the shared shape of every tool's flag loop.
inline const char* require_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace qmb::cli
