// qmbsim — command-line driver for the simulator.
//
// Runs any barrier or collective configuration and prints latency and
// protocol statistics, so experiments beyond the committed benchmarks can
// be run without writing code. Single runs and sweeps both route through
// the run:: experiment layer; sweeps execute in parallel across a thread
// pool with per-point results bit-identical to a single-threaded run.
//
//   qmbsim --network myrinet-xp --nodes 8 --impl nic --op barrier
//   qmbsim --network quadrics --nodes 64 --impl hgsync --iters 1000
//   qmbsim --network myrinet-l9 --nodes 16 --impl host --algorithm pe
//   qmbsim --network myrinet-xp --nodes 8 --op allreduce --impl host
//   qmbsim --network myrinet-xp --nodes 8 --drop-prob 0.01 --trace
//   qmbsim --network quadrics --impl nic --sweep 2:1024:x2 --json
//   qmbsim --network myrinet-xp --sweep 2,4,8,16 --threads 4
//   qmbsim --network ib --nodes 64 --impl nic --drop-prob 0.001
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli.hpp"
#include "run/substrate.hpp"
#include "run/sweep.hpp"

using namespace qmb;

namespace {

struct Options {
  run::ExperimentSpec spec;
  std::vector<int> sweep_nodes;  // empty = single run at spec.nodes
  bool json = false;
  unsigned threads = 0;  // 0 = default_sweep_threads()
  std::string trace_file;    // --trace CSV destination ("" = stdout/stderr)
  std::string metrics_json;  // metric snapshot destination
  std::string chrome_trace;  // Chrome trace_event JSON destination
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --network %s   (default myrinet-xp)\n"
      "  --nodes N                                  (default 8)\n"
      "  --op barrier|bcast|reduce|allreduce|allgather|alltoall (default barrier;\n"
      "         reduce is an alias for allreduce)\n"
      "  --impl nic|host|direct|gsync|hgsync        (default nic;\n"
      "         direct = prior-work NIC scheme, Myrinet barrier only;\n"
      "         gsync/hgsync = Quadrics barrier only)\n"
      "  --algorithm ds|pe|gb|tree|trn|fway|ra      (default ds;\n"
      "         ds = dissemination, pe = pairwise exchange, gb = gather-\n"
      "         broadcast tree, tree = binomial tree, trn = tournament,\n"
      "         fway = f-way dissemination, ra = remote-atomic central\n"
      "         counter, IB only; per-(network, op) support is capability-\n"
      "         gated — value collectives accept the value-correct subset)\n"
      "  --radix R                                  gb tree degree / fway f\n"
      "         (default 0 = the algorithm's own default: gb 2, fway 4)\n"
      "  --overlap US                               split-phase collectives: each\n"
      "         rank start()s (notify()s for barriers), computes US micro-\n"
      "         seconds, then wait()s; measures how much of the operation\n"
      "         hides behind compute\n"
      "  --iters K --warmup W                       (default 1000 / 100)\n"
      "  --seed S --perm                            random rank placement\n"
      "  --drop-prob P                              packet loss (%s)\n"
      "  --fault SPEC                               install a fault rule (repeatable,\n"
      "         loss-capable networks only; rule order = match order). SPEC grammar:\n"
      "           drop:nth=3,src=2,dst=4    dup:p=0.01,seed=7\n"
      "           reorder:nth=2,delay=10us  blackout:from=100us,until=250us\n"
      "  --skew US                                  max per-entry skew in us\n"
      "         (each rank's every entry delays by a seeded uniform draw)\n"
      "  --workload SPEC                            multi-tenant mode: N concurrent\n"
      "         groups issuing a collective mix from an open-loop arrival process,\n"
      "         plus optional background flood traffic. SPEC grammar (see cli.hpp):\n"
      "           groups=8,size=4,mix=barrier+allreduce,arrival=poisson,period=20us\n"
      "           groups=64,size=4,member=stride,flood=8,flood-bytes=4096\n"
      "         prints per-group p50/p99/p999 and a Jain fairness index\n"
      "  --horizon-ms H                             simulated-time watchdog\n"
      "  --trace                                    dump protocol trace CSV\n"
      "  --trace-file PATH                          write the trace CSV to PATH\n"
      "         (without it, --trace goes to stdout, or to stderr when --json\n"
      "         is set so the JSON stream stays parseable)\n"
      "  --metrics-json PATH                        write the metric snapshot\n"
      "         (counters, gauges, log2 histograms) as JSON to PATH\n"
      "  --chrome-trace PATH                        write a Chrome trace_event\n"
      "         JSON timeline to PATH (open in chrome://tracing or Perfetto;\n"
      "         single runs only). Packet hops render as flow arrows between\n"
      "         NIC tracks; summarize per-round latency with:\n"
      "           python3 tools/trace_report.py PATH\n"
      "  --engine-threads T                         conservative-PDES worker\n"
      "         threads for a single run (default 1 = sequential engine).\n"
      "         Results are bit-identical at any thread count; specs with\n"
      "         faults, skew, workloads, tracing or non-NIC impls fall back\n"
      "         to the sequential engine\n"
      "  --engine-domains D                         explicit PDES domain count\n"
      "         (default: auto from --engine-threads). Domain count, not\n"
      "         thread count, decides the window schedule; results are\n"
      "         identical for every thread count at a fixed domain count\n"
      "  --sweep LIST                               node-count axis; LIST is\n"
      "         comma-separated counts and/or ranges: 2,4,8  2:64:x2 (geometric)\n"
      "         2:16:+2 (arithmetic); runs all points in parallel\n"
      "  --threads T                                sweep worker threads\n"
      "                                             (default: all cores,\n"
      "                                             or $QMB_SWEEP_THREADS)\n"
      "  --json                                     one JSON object per run\n",
      argv0, run::substrate_names("|").c_str(), run::loss_capable_names().c_str());
  std::exit(2);
}

/// Parses one --sweep token: "N", "lo:hi:xK" (geometric), or "lo:hi:+K"
/// (arithmetic). "lo:hi" doubles. Returns false on malformed input.
bool parse_sweep_token(const std::string& tok, std::vector<int>& out) {
  const auto c1 = tok.find(':');
  if (c1 == std::string::npos) {
    const int n = std::atoi(tok.c_str());
    if (n < 2) return false;
    out.push_back(n);
    return true;
  }
  const auto c2 = tok.find(':', c1 + 1);
  const int lo = std::atoi(tok.substr(0, c1).c_str());
  const int hi = std::atoi(tok.substr(c1 + 1, c2 == std::string::npos
                                                  ? std::string::npos
                                                  : c2 - c1 - 1)
                               .c_str());
  char mode = 'x';
  int step = 2;
  if (c2 != std::string::npos) {
    const std::string s = tok.substr(c2 + 1);
    if (s.size() < 2 || (s[0] != 'x' && s[0] != '+')) return false;
    mode = s[0];
    step = std::atoi(s.c_str() + 1);
  }
  if (lo < 2 || hi < lo || step < (mode == 'x' ? 2 : 1)) return false;
  for (int n = lo; n <= hi; n = mode == 'x' ? n * step : n + step) out.push_back(n);
  return true;
}

std::vector<int> parse_sweep(const std::string& list, const char* argv0) {
  std::vector<int> nodes;
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto comma = list.find(',', start);
    const std::string tok =
        list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!parse_sweep_token(tok, nodes)) {
      std::fprintf(stderr, "malformed --sweep element '%s' in '%s'\n", tok.c_str(),
                   list.c_str());
      usage(argv0);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return nodes;
}

Options parse(int argc, char** argv) {
  Options o;
  o.spec.iters = 1000;
  o.spec.warmup = 100;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (a == "--network") {
      const char* v = next("--network");
      const auto n = run::parse_network(v);
      if (!n) {
        std::fprintf(stderr, "unknown --network '%s' (valid: %s)\n", v,
                     run::substrate_names().c_str());
        usage(argv[0]);
      }
      o.spec.network = *n;
    } else if (a == "--nodes") {
      o.spec.nodes = std::atoi(next("--nodes"));
    } else if (a == "--op") {
      const char* v = next("--op");
      const auto k = run::parse_op(v);
      if (!k) {
        std::fprintf(stderr,
                     "unknown --op '%s' (valid: barrier, bcast, reduce, allreduce, "
                     "allgather, alltoall)\n",
                     v);
        usage(argv[0]);
      }
      o.spec.op = *k;
    } else if (a == "--impl") {
      const char* v = next("--impl");
      const auto impl = run::parse_impl(v);
      if (!impl) {
        std::fprintf(stderr,
                     "unknown --impl '%s' (valid: nic, host, direct, gsync, hgsync)\n", v);
        usage(argv[0]);
      }
      o.spec.impl = *impl;
    } else if (a == "--algorithm") {
      const char* v = next("--algorithm");
      const auto alg = run::parse_algorithm(v);
      if (!alg) {
        std::fprintf(stderr,
                     "unknown --algorithm '%s' (valid: ds, pe, gb, tree, trn, fway, "
                     "ra)\n",
                     v);
        usage(argv[0]);
      }
      o.spec.algorithm = *alg;
    } else if (a == "--radix") {
      o.spec.radix = std::atoi(next("--radix"));
    } else if (a == "--overlap") {
      o.spec.overlap_us = std::atof(next("--overlap"));
    } else if (a == "--iters") {
      o.spec.iters = std::atoi(next("--iters"));
    } else if (a == "--warmup") {
      o.spec.warmup = std::atoi(next("--warmup"));
    } else if (a == "--seed") {
      o.spec.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (a == "--perm") {
      o.spec.random_placement = true;
    } else if (a == "--drop-prob") {
      o.spec.drop_prob = std::atof(next("--drop-prob"));
    } else if (a == "--fault") {
      net::FaultSpec f;
      if (const std::string err = cli::parse_fault(next("--fault"), f); !err.empty()) {
        std::fprintf(stderr, "--fault: %s\n", err.c_str());
        usage(argv[0]);
      }
      o.spec.faults.push_back(f);
    } else if (a == "--skew") {
      o.spec.skew_max_us = std::atof(next("--skew"));
    } else if (a == "--workload") {
      if (const std::string err = cli::parse_workload(next("--workload"), o.spec.workload);
          !err.empty()) {
        std::fprintf(stderr, "--workload: %s\n", err.c_str());
        usage(argv[0]);
      }
    } else if (a == "--horizon-ms") {
      o.spec.horizon_ms = std::atol(next("--horizon-ms"));
    } else if (a == "--trace") {
      o.spec.collect_trace = true;
    } else if (a == "--trace-file") {
      o.trace_file = next("--trace-file");
      o.spec.collect_trace = true;
    } else if (a == "--metrics-json") {
      o.metrics_json = next("--metrics-json");
    } else if (a == "--chrome-trace") {
      o.chrome_trace = next("--chrome-trace");
      o.spec.chrome_trace = true;
    } else if (a == "--engine-threads") {
      const int t = std::atoi(next("--engine-threads"));
      if (t < 1) {
        std::fprintf(stderr, "--engine-threads must be >= 1\n");
        usage(argv[0]);
      }
      o.spec.engine_threads = t;
    } else if (a == "--engine-domains") {
      const int d = std::atoi(next("--engine-domains"));
      if (d < 1) {
        std::fprintf(stderr, "--engine-domains must be >= 1\n");
        usage(argv[0]);
      }
      o.spec.engine_domains = d;
    } else if (a == "--sweep") {
      o.sweep_nodes = parse_sweep(next("--sweep"), argv[0]);
    } else if (a == "--threads") {
      const int t = std::atoi(next("--threads"));
      if (t < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        usage(argv[0]);
      }
      o.threads = static_cast<unsigned>(t);
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  // Validate the spec up front so a bad --impl/--network pair is reported by
  // name instead of surfacing as a silent exit mid-run. The sweep's node
  // axis replaces --nodes, so validate with its first point when present.
  run::ExperimentSpec probe = o.spec;
  if (!o.sweep_nodes.empty()) probe.nodes = o.sweep_nodes.front();
  if (const std::string err = run::validate(probe); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    std::exit(2);
  }
  if (!o.sweep_nodes.empty() && !o.chrome_trace.empty()) {
    std::fprintf(stderr, "--chrome-trace applies to single runs only, not --sweep\n");
    std::exit(2);
  }
  return o;
}

/// Writes `text` (plus a trailing newline) to `path`; exits 2 on failure so
/// a bad --trace-file/--metrics-json/--chrome-trace path is loud.
void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(2);
  }
  std::fputs(text.c_str(), f);
  if (text.empty() || text.back() != '\n') std::fputc('\n', f);
  std::fclose(f);
}

void print_result(const run::RunResult& r) {
  std::printf("%s, %d nodes, %s\n", r.impl_name.c_str(), r.spec.nodes,
              std::string(run::to_string(r.spec.network)).c_str());
  std::printf("iterations: %llu\n", static_cast<unsigned long long>(r.iterations));
  std::printf("latency: mean %.2f us, min %.2f us, max %.2f us, p99 %.2f us\n",
              r.mean_us(), r.min_us(), r.max_us(), r.p99_us());
  std::printf("wire: %llu packets, %llu bytes, %llu dropped\n",
              static_cast<unsigned long long>(r.packets_sent),
              static_cast<unsigned long long>(r.bytes_sent),
              static_cast<unsigned long long>(r.packets_dropped));
  std::printf("recovery: %llu NACKs, %llu retransmissions\n",
              static_cast<unsigned long long>(r.nacks),
              static_cast<unsigned long long>(r.retransmissions));
  if (r.crc_dropped > 0) {
    std::printf("crc: %llu corrupted packets discarded at the NICs\n",
                static_cast<unsigned long long>(r.crc_dropped));
  }
  if (r.hw_probes > 0) {
    std::printf("hgsync: %llu probes, %llu failed\n",
                static_cast<unsigned long long>(r.hw_probes),
                static_cast<unsigned long long>(r.hw_failed_probes));
  }
  if (!r.group_stats.empty()) {
    std::printf("workload: %zu groups x %d ranks, %s arrivals, fairness %.4f\n",
                r.group_stats.size(), r.spec.workload.group_size,
                std::string(load::to_string(r.spec.workload.arrival)).c_str(),
                r.fairness);
    if (r.flood_sends > 0) {
      std::printf("flood: %d streams, %llu background messages\n",
                  r.spec.workload.flood_streams,
                  static_cast<unsigned long long>(r.flood_sends));
    }
    std::printf("%-8s %8s %12s %12s %12s %12s %10s\n", "group", "ops", "p50(us)",
                "p99(us)", "p999(us)", "max(us)", "backlog");
    for (const load::GroupStats& g : r.group_stats) {
      std::printf("%-8d %8llu %12.2f %12.2f %12.2f %12.2f %10llu\n", g.group,
                  static_cast<unsigned long long>(g.ops),
                  static_cast<double>(g.p50_picos) * 1e-6,
                  static_cast<double>(g.p99_picos) * 1e-6,
                  static_cast<double>(g.p999_picos) * 1e-6,
                  static_cast<double>(g.max_picos) * 1e-6,
                  static_cast<unsigned long long>(g.backlog_peak));
    }
  }
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(r.fingerprint()));
}

int run_single(const Options& o) {
  const auto r = run::run_experiment(o.spec);
  if (o.json) {
    std::printf("%s\n", run::to_json(r).c_str());
  } else {
    print_result(r);
  }
  if (r.trace_dropped > 0) {
    std::fprintf(stderr,
                 "warning: trace ring wrapped, %llu oldest events dropped; exports "
                 "are the tail of the timeline\n",
                 static_cast<unsigned long long>(r.trace_dropped));
  }
  if (o.spec.collect_trace) {
    // The CSV goes to its own file when asked; under --json it goes to
    // stderr so the stdout JSON stream stays parseable line-by-line.
    if (!o.trace_file.empty()) {
      write_file(o.trace_file, r.trace_csv);
    } else {
      std::fputs(r.trace_csv.c_str(), o.json ? stderr : stdout);
    }
  }
  if (!o.metrics_json.empty()) write_file(o.metrics_json, run::metrics_to_json(r.metrics));
  if (!o.chrome_trace.empty()) write_file(o.chrome_trace, r.trace_json);
  return 0;
}

int run_sweep(const Options& o) {
  std::vector<run::ExperimentSpec> specs;
  specs.reserve(o.sweep_nodes.size());
  for (std::size_t i = 0; i < o.sweep_nodes.size(); ++i) {
    run::ExperimentSpec s = o.spec;
    s.nodes = o.sweep_nodes[i];
    // Per-point seeds stay deterministic but decorrelated along the axis.
    s.seed = run::seed_for(o.spec.seed, i);
    specs.push_back(s);
  }
  const run::SweepRunner runner(o.threads);
  const auto results = runner.run(specs);
  if (!o.metrics_json.empty()) {
    // One array element per sweep point, keyed by node count.
    std::string doc = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i > 0) doc += ',';
      doc += "{\"nodes\":" + std::to_string(results[i].spec.nodes) +
             ",\"metrics\":" + run::metrics_to_json(results[i].metrics) + "}";
    }
    doc += "]";
    write_file(o.metrics_json, doc);
  }
  if (o.json) {
    for (const auto& r : results) std::printf("%s\n", run::to_json(r).c_str());
    return 0;
  }
  std::printf("%s sweep, %s/%s, %zu points, %u threads\n",
              std::string(run::to_string(o.spec.op)).c_str(),
              std::string(run::to_string(o.spec.network)).c_str(),
              std::string(run::to_string(o.spec.impl)).c_str(), results.size(),
              runner.threads());
  std::printf("%-8s %12s %12s %12s %12s %14s %18s\n", "nodes", "mean(us)", "min(us)",
              "max(us)", "p99(us)", "packets", "fingerprint");
  for (const auto& r : results) {
    std::printf("%-8d %12.2f %12.2f %12.2f %12.2f %14llu   %016llx\n", r.spec.nodes,
                r.mean_us(), r.min_us(), r.max_us(), r.p99_us(),
                static_cast<unsigned long long>(r.packets_sent),
                static_cast<unsigned long long>(r.fingerprint()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    return o.sweep_nodes.empty() ? run_single(o) : run_sweep(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
