// qmbsim — command-line driver for the simulator.
//
// Runs any barrier or collective configuration and prints latency and
// protocol statistics, so experiments beyond the committed benchmarks can
// be run without writing code:
//
//   qmbsim --network myrinet-xp --nodes 8 --impl nic --op barrier
//   qmbsim --network quadrics --nodes 64 --impl hgsync --iters 1000
//   qmbsim --network myrinet-l9 --nodes 16 --impl host --algorithm pe
//   qmbsim --network myrinet-xp --nodes 8 --op allreduce --impl host
//   qmbsim --network myrinet-xp --nodes 8 --drop-prob 0.01 --trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>

#include "core/cluster.hpp"
#include "core/collectives.hpp"

using namespace qmb;

namespace {

struct Options {
  std::string network = "myrinet-xp";  // myrinet-xp | myrinet-l9 | quadrics
  int nodes = 8;
  std::string op = "barrier";    // barrier | bcast | allreduce | allgather | alltoall
  std::string impl = "nic";      // nic | host | direct | gsync | hgsync
  std::string algorithm = "ds";  // ds | pe | gb
  int iters = 1000;
  int warmup = 100;
  std::uint64_t seed = 1;
  bool random_placement = false;
  double drop_prob = 0.0;
  bool trace = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --network myrinet-xp|myrinet-l9|quadrics   (default myrinet-xp)\n"
      "  --nodes N                                  (default 8)\n"
      "  --op barrier|bcast|allreduce|allgather|alltoall (default barrier)\n"
      "  --impl nic|host|direct|gsync|hgsync        (default nic;\n"
      "         direct = prior-work NIC scheme, Myrinet barrier only;\n"
      "         gsync/hgsync = Quadrics barrier only)\n"
      "  --algorithm ds|pe|gb                       (default ds)\n"
      "  --iters K --warmup W                       (default 1000 / 100)\n"
      "  --seed S --perm                            random rank placement\n"
      "  --drop-prob P                              Myrinet packet loss\n"
      "  --trace                                    dump protocol trace CSV\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (a == "--network") o.network = next("--network");
    else if (a == "--nodes") o.nodes = std::atoi(next("--nodes"));
    else if (a == "--op") o.op = next("--op");
    else if (a == "--impl") o.impl = next("--impl");
    else if (a == "--algorithm") o.algorithm = next("--algorithm");
    else if (a == "--iters") o.iters = std::atoi(next("--iters"));
    else if (a == "--warmup") o.warmup = std::atoi(next("--warmup"));
    else if (a == "--seed") o.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (a == "--perm") o.random_placement = true;
    else if (a == "--drop-prob") o.drop_prob = std::atof(next("--drop-prob"));
    else if (a == "--trace") o.trace = true;
    else if (a == "--help" || a == "-h") usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (o.nodes < 2) {
    std::fprintf(stderr, "--nodes must be >= 2\n");
    std::exit(2);
  }
  return o;
}

coll::Algorithm algorithm_of(const Options& o) {
  if (o.algorithm == "ds") return coll::Algorithm::kDissemination;
  if (o.algorithm == "pe") return coll::Algorithm::kPairwiseExchange;
  if (o.algorithm == "gb") return coll::Algorithm::kGatherBroadcast;
  std::fprintf(stderr, "unknown algorithm '%s'\n", o.algorithm.c_str());
  std::exit(2);
}

std::optional<coll::OpKind> value_op_of(const std::string& op) {
  if (op == "bcast") return coll::OpKind::kBcast;
  if (op == "allreduce") return coll::OpKind::kAllreduce;
  if (op == "allgather") return coll::OpKind::kAllgather;
  if (op == "alltoall") return coll::OpKind::kAlltoall;
  return std::nullopt;
}

void print_result(const core::BarrierRunResult& r) {
  std::printf("iterations: %llu\n", static_cast<unsigned long long>(r.iterations));
  std::printf("latency: mean %.2f us, min %.2f us, max %.2f us, p99 %.2f us\n",
              r.mean.micros(), r.per_iteration.min().micros(),
              r.per_iteration.max().micros(), r.per_iteration.percentile(99).micros());
}

/// Drives consecutive value collectives with the barrier runner's
/// methodology.
core::BarrierRunResult run_collective(sim::Engine& engine, core::Collective& op,
                                      int warmup, int iters) {
  const int n = op.size();
  const int total = warmup + iters;
  std::vector<int> iter_of(static_cast<std::size_t>(n), 0);
  std::vector<int> done_in(static_cast<std::size_t>(total), 0);
  std::vector<sim::SimTime> completed(static_cast<std::size_t>(total));
  std::function<void(int)> loop = [&](int rank) {
    const int it = iter_of[static_cast<std::size_t>(rank)];
    if (it >= total) return;
    op.enter(rank, rank + 1, [&, rank, it](std::int64_t) {
      iter_of[static_cast<std::size_t>(rank)] = it + 1;
      if (++done_in[static_cast<std::size_t>(it)] == n) {
        completed[static_cast<std::size_t>(it)] = engine.now();
      }
      engine.schedule(sim::SimDuration::zero(), [&loop, rank] { loop(rank); });
    });
  };
  for (int r = 0; r < n; ++r) loop(r);
  engine.run_until(engine.now() + sim::seconds(120));
  core::BarrierRunResult res;
  res.iterations = static_cast<std::uint64_t>(iters);
  for (int i = warmup; i < total; ++i) {
    const sim::SimTime prev =
        i == 0 ? sim::SimTime::zero() : completed[static_cast<std::size_t>(i - 1)];
    res.per_iteration.add(completed[static_cast<std::size_t>(i)] - prev);
  }
  res.mean = res.per_iteration.mean();
  return res;
}

int run_myrinet(const Options& o) {
  const auto cfg = o.network == "myrinet-l9" ? myri::lanai9_cluster()
                                             : myri::lanaixp_cluster();
  sim::Engine engine;
  sim::Tracer tracer;
  if (o.trace) tracer.enable();
  core::MyriCluster cluster(engine, cfg, o.nodes, o.trace ? &tracer : nullptr);
  if (o.drop_prob > 0) {
    cluster.fabric().faults().add_random_rule(std::nullopt, std::nullopt, o.drop_prob,
                                              o.seed);
  }
  sim::Rng rng(o.seed);
  auto placement = o.random_placement ? core::random_placement(o.nodes, rng)
                                      : core::identity_placement(o.nodes);

  if (const auto kind = value_op_of(o.op)) {
    auto op = o.impl == "host"
                  ? core::make_host_collective(cluster, *kind, 0,
                                               coll::ReduceOp::kSum, placement)
                  : core::make_nic_collective(cluster, *kind, 0, coll::ReduceOp::kSum,
                                              placement);
    std::printf("%s, %d nodes, %s\n", std::string(op->name()).c_str(), o.nodes,
                cfg.lanai.clock_mhz > 200 ? "LANai-XP" : "LANai 9.1");
    print_result(run_collective(engine, *op, o.warmup, o.iters));
  } else if (o.op == "barrier") {
    core::MyriBarrierKind kind = core::MyriBarrierKind::kNicCollective;
    if (o.impl == "host") kind = core::MyriBarrierKind::kHost;
    else if (o.impl == "direct") kind = core::MyriBarrierKind::kNicDirect;
    else if (o.impl != "nic") {
      std::fprintf(stderr, "impl '%s' is not a Myrinet barrier\n", o.impl.c_str());
      return 2;
    }
    auto barrier = cluster.make_barrier(kind, algorithm_of(o), placement);
    std::printf("%s, %d nodes\n", std::string(barrier->name()).c_str(), o.nodes);
    print_result(core::run_consecutive_barriers(engine, *barrier, o.warmup, o.iters));
  } else {
    std::fprintf(stderr, "unknown op '%s'\n", o.op.c_str());
    return 2;
  }

  std::printf("wire: %llu packets, %llu bytes, %llu dropped\n",
              static_cast<unsigned long long>(cluster.fabric().packets_sent()),
              static_cast<unsigned long long>(cluster.fabric().bytes_sent()),
              static_cast<unsigned long long>(cluster.fabric().faults().dropped()));
  std::uint64_t nacks = 0, retrans = 0;
  for (int i = 0; i < o.nodes; ++i) {
    nacks += cluster.node(i).coll().stats().nacks_sent.value;
    retrans += cluster.node(i).coll().stats().retransmissions.value +
               cluster.node(i).mcp().stats().retransmissions.value;
  }
  std::printf("recovery: %llu NACKs, %llu retransmissions\n",
              static_cast<unsigned long long>(nacks),
              static_cast<unsigned long long>(retrans));
  if (o.trace) std::fputs(tracer.to_csv().c_str(), stdout);
  return 0;
}

int run_quadrics(const Options& o) {
  sim::Engine engine;
  sim::Tracer tracer;
  if (o.trace) tracer.enable();
  core::ElanCluster cluster(engine, elan::elan3_cluster(), o.nodes,
                            o.trace ? &tracer : nullptr);
  sim::Rng rng(o.seed);
  auto placement = o.random_placement ? core::random_placement(o.nodes, rng)
                                      : core::identity_placement(o.nodes);

  if (const auto kind = value_op_of(o.op)) {
    auto op = o.impl == "host"
                  ? core::make_elan_host_collective(cluster, *kind, 0,
                                                    coll::ReduceOp::kSum, placement)
                  : core::make_elan_nic_collective(cluster, *kind, 0,
                                                   coll::ReduceOp::kSum, placement);
    std::printf("%s, %d nodes\n", std::string(op->name()).c_str(), o.nodes);
    print_result(run_collective(engine, *op, o.warmup, o.iters));
  } else if (o.op == "barrier") {
    core::ElanBarrierKind kind = core::ElanBarrierKind::kNicChained;
    if (o.impl == "gsync" || o.impl == "host") kind = core::ElanBarrierKind::kGsyncTree;
    else if (o.impl == "hgsync") kind = core::ElanBarrierKind::kHardware;
    else if (o.impl != "nic") {
      std::fprintf(stderr, "impl '%s' is not a Quadrics barrier\n", o.impl.c_str());
      return 2;
    }
    auto barrier = cluster.make_barrier(kind, algorithm_of(o), placement);
    std::printf("%s, %d nodes\n", std::string(barrier->name()).c_str(), o.nodes);
    print_result(core::run_consecutive_barriers(engine, *barrier, o.warmup, o.iters));
    if (kind == core::ElanBarrierKind::kHardware) {
      std::printf("hgsync: %llu probes, %llu failed\n",
                  static_cast<unsigned long long>(cluster.hw_barrier().probes_sent()),
                  static_cast<unsigned long long>(cluster.hw_barrier().failed_probes()));
    }
  } else {
    std::fprintf(stderr, "unknown op '%s'\n", o.op.c_str());
    return 2;
  }

  std::printf("wire: %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(cluster.fabric().packets_sent()),
              static_cast<unsigned long long>(cluster.fabric().bytes_sent()));
  if (o.trace) std::fputs(tracer.to_csv().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.network == "quadrics") return run_quadrics(o);
  if (o.network == "myrinet-xp" || o.network == "myrinet-l9") return run_myrinet(o);
  std::fprintf(stderr, "unknown network '%s'\n", o.network.c_str());
  return 2;
}
